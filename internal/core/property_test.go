package core

import (
	"errors"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/topology"
)

// randomTableModel builds a random pairwise conflict model over a chain
// of n links with the given rate choices, always keeping consecutive
// links conflicting (so paths behave like paths).
func randomTableModel(rng *rand.Rand, n int, rates []radio.Rate) (*conflict.Table, topology.Path) {
	tb := conflict.NewTable()
	path := make(topology.Path, 0, n)
	for i := topology.LinkID(0); int(i) < n; i++ {
		tb.SetRates(i, rates...)
		path = append(path, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if j == i+1 {
				// Adjacent hops always conflict (shared node).
				if err := tb.AddConflictAllRates(topology.LinkID(i), topology.LinkID(j)); err != nil {
					panic(err)
				}
				continue
			}
			for _, ri := range rates {
				for _, rj := range rates {
					if rng.Float64() < 0.5 {
						if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
							panic(err)
						}
					}
				}
			}
		}
	}
	return tb, path
}

// TestBoundsSandwichRandomTables checks on random conflict structures
// that lower bound <= exact <= Eq. 9 upper bound, and that the exact
// value is achieved by a valid schedule.
func TestBoundsSandwichRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rates := []radio.Rate{54, 36}
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		m, path := randomTableModel(rng, n, rates)

		exact, err := AvailableBandwidth(m, nil, path, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if exact.Status != lp.Optimal {
			t.Fatalf("trial %d: exact LP %v", trial, exact.Status)
		}
		if err := exact.Schedule.Validate(m); err != nil {
			t.Errorf("trial %d: schedule invalid: %v", trial, err)
		}
		for _, l := range path {
			if got := exact.Schedule.Throughput(l); got < exact.Bandwidth-1e-6 {
				t.Errorf("trial %d: schedule delivers %.4f on link %d, below f=%.4f", trial, got, l, exact.Bandwidth)
			}
		}

		upper, err := UpperBoundLP(m, nil, path, Options{})
		if err != nil {
			t.Fatalf("trial %d: upper: %v", trial, err)
		}
		if upper.Status == lp.Optimal && upper.Bandwidth < exact.Bandwidth-1e-6 {
			t.Errorf("trial %d: Eq.9 upper bound %.4f below exact %.4f", trial, upper.Bandwidth, exact.Bandwidth)
		}

		// Lower bound from a random half of the maximal sets.
		if len(exact.Sets) > 1 {
			k := 1 + rng.Intn(len(exact.Sets))
			lower, err := AvailableBandwidthWithSets(m, nil, path, exact.Sets[:k])
			if err != nil {
				t.Fatalf("trial %d: lower: %v", trial, err)
			}
			lowerBW := 0.0
			if lower.Status == lp.Optimal {
				lowerBW = lower.Bandwidth
			}
			if lowerBW > exact.Bandwidth+1e-6 {
				t.Errorf("trial %d: lower bound %.4f above exact %.4f", trial, lowerBW, exact.Bandwidth)
			}
		}
	}
}

// TestExactMonotoneInBackground checks that adding background traffic
// never increases the available bandwidth.
func TestExactMonotoneInBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rates := []radio.Rate{54, 36, 18}
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		m, path := randomTableModel(rng, n, rates)
		prev := -1.0
		for _, demand := range []float64{0, 1, 2, 4} {
			var bg []Flow
			if demand > 0 {
				bg = []Flow{{Path: topology.Path{path[0]}, Demand: demand}}
			}
			res, err := AvailableBandwidth(m, bg, path, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			bw := 0.0
			if res.Status == lp.Optimal {
				bw = res.Bandwidth
			}
			if prev >= 0 && bw > prev+1e-6 {
				t.Errorf("trial %d: availability rose from %.4f to %.4f as background grew to %g",
					trial, prev, bw, demand)
			}
			prev = bw
		}
	}
}

// TestFixedRateNeverBeatsMultirate checks on random physical chains
// that pinning rates can only lose capacity — the generalization of the
// paper's Scenario II observation.
func TestFixedRateNeverBeatsMultirate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		hops := 3 + rng.Intn(2)
		spacing := 60 + rng.Float64()*60
		net, path, err := topology.Chain(radio.NewProfile80211a(), hops, spacing)
		if err != nil {
			t.Fatal(err)
		}
		m := conflict.NewPhysical(net)
		multirate, err := AvailableBandwidth(m, nil, path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Pin every hop to its alone max rate.
		assignment := make([]conflict.Couple, 0, len(path))
		for _, l := range path {
			assignment = append(assignment, conflict.Couple{Link: l, Rate: conflict.AloneMaxRate(m, l)})
		}
		fixed := conflict.FixRates(m, assignment)
		pinned, err := AvailableBandwidth(fixed, nil, path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pinnedBW := 0.0
		if pinned.Status == lp.Optimal {
			pinnedBW = pinned.Bandwidth
		}
		if pinnedBW > multirate.Bandwidth+1e-6 {
			t.Errorf("trial %d (hops=%d spacing=%.0f): pinned %.4f beats multirate %.4f",
				trial, hops, spacing, pinnedBW, multirate.Bandwidth)
		}
	}
}

// TestScheduleSetsAreEnumerated checks that every slot of an optimal
// schedule is one of the enumerated maximal independent sets.
func TestScheduleSetsAreEnumerated(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rates := []radio.Rate{54, 36}
	for trial := 0; trial < 15; trial++ {
		m, path := randomTableModel(rng, 3+rng.Intn(3), rates)
		res, err := AvailableBandwidth(m, nil, path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys := make(map[string]bool, len(res.Sets))
		for _, s := range res.Sets {
			keys[s.Key()] = true
		}
		for _, slot := range res.Schedule.Slots {
			if !keys[slot.Set.Key()] {
				t.Errorf("trial %d: slot set %v not among enumerated maximal sets", trial, slot.Set)
			}
		}
		// And the enumerated sets must each be maximal.
		for _, s := range res.Sets {
			if !indepset.IsMaximal(m, s, res.Links) {
				t.Errorf("trial %d: enumerated set %v not maximal", trial, s)
			}
		}
	}
}

// TestRandomGeometricAvailability runs the full pipeline on small random
// geometric networks: route, compute availability, validate the
// schedule, and check the Eq. 9 bound dominates.
func TestRandomGeometricAvailability(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.New(radio.NewProfile80211a(),
			geom.UniformPoints(rng, geom.Rect{W: 300, H: 300}, 8))
		if err != nil {
			t.Fatal(err)
		}
		m := conflict.NewPhysical(net)
		// Find any connected pair with a multi-hop path.
		var path topology.Path
		for a := 0; a < net.NumNodes() && path == nil; a++ {
			for b := 0; b < net.NumNodes(); b++ {
				if a == b {
					continue
				}
				if _, ok := net.LinkBetween(topology.NodeID(a), topology.NodeID(b)); ok {
					continue // want multi-hop
				}
				p, err := shortestHopPath(net, topology.NodeID(a), topology.NodeID(b))
				if err == nil && len(p) >= 2 {
					path = p
					break
				}
			}
		}
		if path == nil {
			continue // no multi-hop pair in this draw
		}
		exact, err := AvailableBandwidth(m, nil, path, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if exact.Status != lp.Optimal || exact.Bandwidth <= 0 {
			t.Errorf("seed %d: exact = (%v, %.4f)", seed, exact.Status, exact.Bandwidth)
			continue
		}
		if err := exact.Schedule.Validate(m); err != nil {
			t.Errorf("seed %d: schedule invalid: %v", seed, err)
		}
	}
}

// shortestHopPath is a minimal BFS routing helper for the property test.
func shortestHopPath(net *topology.Network, src, dst topology.NodeID) (topology.Path, error) {
	type entry struct {
		node topology.NodeID
		via  topology.LinkID
		prev int
	}
	queue := []entry{{node: src, via: -1, prev: -1}}
	seen := map[topology.NodeID]bool{src: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.node == dst {
			var rev topology.Path
			for j := i; queue[j].via >= 0; j = queue[j].prev {
				rev = append(rev, queue[j].via)
			}
			path := make(topology.Path, 0, len(rev))
			for k := len(rev) - 1; k >= 0; k-- {
				path = append(path, rev[k])
			}
			return path, nil
		}
		for _, lid := range net.OutLinks(cur.node) {
			link, err := net.Link(lid)
			if err != nil {
				return nil, err
			}
			if !seen[link.Rx] {
				seen[link.Rx] = true
				queue = append(queue, entry{node: link.Rx, via: lid, prev: i})
			}
		}
	}
	return nil, errNoHopPath
}

var errNoHopPath = errors.New("no path")
