package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"abw/internal/conflict"
	"abw/internal/estimate"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/obs"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// Session amortizes repeated availability queries against one conflict
// model: the shape an admission loop produces, where the same
// (universe, candidate path) pair is solved again and again with only
// the background demands moving between steps. Three layers stack:
//
//  1. set families come from Options.Cache (or a fresh enumeration
//     when no cache is configured) — byte-identical either way;
//  2. the Eq. 6 LP for each (universe, path) pair is built once with a
//     row for EVERY universe link (vacuous 0 >= 0 rows are harmless,
//     and make the structure independent of which links carry demand),
//     so a background change is a pure right-hand-side update the
//     retained lp.WarmSolver repairs in a few dual-simplex pivots;
//  3. feasibility verdicts are memoized by exact demand signature, so
//     the repeated "is the current background still deliverable?"
//     check before each admission step costs a map lookup.
//
// Answers are exact: the warm-started optimum matches a cold
// AvailableBandwidth solve within pivot-tolerance arithmetic noise
// (the session property tests pin this), and set families and
// feasibility schedules are byte-identical to the cold path's.
//
// A Session is safe for concurrent use. Enumeration runs outside the
// session lock (so parallel workers and the cache's singleflight keep
// their concurrency); only LP state and the memo maps are guarded.
type Session struct {
	m    conflict.Model
	opts Options

	mu    sync.Mutex
	avail map[string]*availState //guards: mu
	feas  map[string]feasResult  //guards: mu
	idle  map[string][]float64   //guards: mu
}

// NewSession wraps the model and options. The options' Cache (which
// may be nil) also receives the session's warm/cold pivot statistics.
func NewSession(m conflict.Model, opts Options) *Session {
	return &Session{
		m:     m,
		opts:  opts,
		avail: make(map[string]*availState),
		feas:  make(map[string]feasResult),
		idle:  make(map[string][]float64),
	}
}

// Options returns the options the session was built with.
func (s *Session) Options() Options { return s.opts }

// Model returns the conflict model the session answers for.
func (s *Session) Model() conflict.Model { return s.m }

// availState is the retained LP for one (universe, path) pair.
type availState struct {
	w        *lp.WarmSolver
	lambdas  []lp.Var
	sets     []indepset.Set
	universe []topology.LinkID
	rowIdx   map[topology.LinkID]int

	// coldPivots remembers the last from-scratch solve's pivot count,
	// the baseline "pivots saved" is measured against.
	coldPivots int
}

// feasResult memoizes one FeasibleDemands verdict.
type feasResult struct {
	ok    bool
	sched schedule.Schedule
}

// AvailableBandwidth is the session-accelerated equivalent of the
// package-level AvailableBandwidth: same inputs, same answer, but
// repeated queries for the same universe and candidate path re-solve
// warm instead of from scratch.
func (s *Session) AvailableBandwidth(background []Flow, newPath topology.Path) (*Result, error) {
	return s.AvailableBandwidthContext(context.Background(), background, newPath)
}

// AvailableBandwidthContext is AvailableBandwidth under a context:
// enumeration and the (warm or cold) simplex poll ctx. A cancelled
// resolve discards the retained tableau, so the next query for the
// same pair simply re-solves cold — cancellation never corrupts the
// session's memoized state.
func (s *Session) AvailableBandwidthContext(ctx context.Context, background []Flow, newPath topology.Path) (*Result, error) {
	if len(newPath) == 0 {
		return nil, fmt.Errorf("core: empty new path")
	}
	if err := validateFlows(background); err != nil {
		return nil, err
	}
	paths := make([]topology.Path, 0, len(background)+1)
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	paths = append(paths, newPath)
	universe := topology.LinkUnion(paths...)

	// Enumeration (and its cache) run unlocked; the family is
	// deterministic, so a race between two builders of the same state
	// is settled by whoever inserts first.
	sets, err := s.opts.enumerate(ctx, s.m, universe)
	if err != nil {
		return nil, fmt.Errorf("core: enumerating independent sets: %w", err)
	}
	demand := linkDemand(background)
	key := availKey(universe, newPath)

	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.avail[key]
	if st == nil {
		st, err = newAvailState(universe, newPath, sets)
		if err != nil {
			return nil, err
		}
		s.avail[key] = st
	}
	return st.solve(ctx, s.opts.Cache, demand)
}

// newAvailState builds the Eq. 6 LP for the pair once. Unlike the cold
// path it adds a throughput row for every universe link — including
// links no set serves and no demand touches — so any later demand
// vector is reachable by RHS updates alone.
func newAvailState(universe []topology.LinkID, newPath topology.Path, sets []indepset.Set) (*availState, error) {
	prob := lp.NewProblem(lp.Maximize)
	prob.Reserve(len(sets)+1, len(universe)+1)
	lambdas := addLambdaVars(prob, sets, 0)
	f := prob.AddVar("f", 1)

	shareRow := make(map[lp.Var]float64, len(lambdas))
	for _, v := range lambdas {
		shareRow[v] = 1
	}
	if len(shareRow) > 0 {
		if err := prob.AddOwnedConstraint("total-share", shareRow, lp.LE, 1); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	newCount := linkCount(newPath)
	rows := lambdaRows(universe, sets, lambdas)
	rowIdx := make(map[topology.LinkID]int, len(universe))
	for li, link := range universe {
		row := rows[li]
		if c := newCount[link]; c > 0 {
			row[f] = -float64(c)
		}
		rowIdx[link] = prob.NumConstraints()
		if err := prob.AddOwnedConstraint(linkConsName(link), row, lp.GE, 0); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return &availState{
		w:        lp.NewWarmSolver(prob),
		lambdas:  lambdas,
		sets:     sets,
		universe: universe,
		rowIdx:   rowIdx,
	}, nil
}

// solve pushes the demand vector into the RHS and resolves — warm when
// the retained tableau allows it, cold otherwise — reporting pivots
// into the cache counters.
func (st *availState) solve(ctx context.Context, cache *memo.Cache, demand map[topology.LinkID]float64) (*Result, error) {
	for _, link := range st.universe {
		if err := st.w.SetRHS(st.rowIdx[link], demand[link]); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	sol, warm, err := st.w.ResolveContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: solving Eq.6 LP: %w", err)
	}
	if warm {
		cache.AddSolvePivots(true, sol.Pivots, st.coldPivots-sol.Pivots)
	} else {
		st.coldPivots = sol.Pivots
		cache.AddSolvePivots(false, sol.Pivots, 0)
	}

	res := &Result{Status: sol.Status, Sets: st.sets, Links: st.universe}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Bandwidth = sol.Objective
	var sched schedule.Schedule
	for i, set := range st.sets {
		if share := sol.Value(st.lambdas[i]); share > 1e-12 {
			sched.Slots = append(sched.Slots, schedule.Slot{Set: set, Share: share})
		}
	}
	res.Schedule = sched.Normalized()
	return res, nil
}

// FeasibleDemands is the session-memoized equivalent of the
// package-level FeasibleDemands: identical demand signatures over the
// same universe return the recorded verdict and schedule.
func (s *Session) FeasibleDemands(flows []Flow) (bool, schedule.Schedule, error) {
	return s.FeasibleDemandsContext(context.Background(), flows)
}

// FeasibleDemandsContext is FeasibleDemands under a context. A
// cancelled check memoizes nothing: ErrCanceled is never recorded as a
// verdict, so a later uncancelled repeat re-answers from scratch.
func (s *Session) FeasibleDemandsContext(ctx context.Context, flows []Flow) (bool, schedule.Schedule, error) {
	if err := validateFlows(flows); err != nil {
		return false, schedule.Schedule{}, err
	}
	if len(flows) == 0 {
		return true, schedule.Schedule{}, nil
	}
	paths := make([]topology.Path, 0, len(flows))
	for _, f := range flows {
		paths = append(paths, f.Path)
	}
	universe := topology.LinkUnion(paths...)
	demand := linkDemand(flows)
	key := feasKey(universe, demand)

	tm := obs.SpanFrom(ctx).StartStage(obs.StageSession)
	defer tm.End()
	s.mu.Lock()
	if r, ok := s.feas[key]; ok {
		s.mu.Unlock()
		tm.SetOutcome("hit")
		return r.ok, copySchedule(r.sched), nil
	}
	s.mu.Unlock()
	tm.SetOutcome("miss")

	ok, sched, err := FeasibleDemandsContext(ctx, s.m, flows, s.opts)
	if err != nil {
		return ok, sched, err
	}
	s.mu.Lock()
	s.feas[key] = feasResult{ok: ok, sched: sched}
	s.mu.Unlock()
	return ok, copySchedule(sched), nil
}

// IdleRatios returns the per-node carrier-sensed idle ratios induced by
// the flows' minimal-airtime schedule (estimate.NodeIdleRatios over the
// FeasibleDemands schedule), memoized by the same demand signature as
// the feasibility verdict. The routing layer asks this before every
// admission step with an unchanged background, so the repeat costs a
// map lookup. net must be the network the session's model was built on.
func (s *Session) IdleRatios(net *topology.Network, flows []Flow) ([]float64, error) {
	return s.IdleRatiosContext(context.Background(), net, flows)
}

// IdleRatiosContext is IdleRatios under a context; cancelled
// computations memoize nothing.
func (s *Session) IdleRatiosContext(ctx context.Context, net *topology.Network, flows []Flow) ([]float64, error) {
	if len(flows) == 0 {
		idle := make([]float64, net.NumNodes())
		for i := range idle {
			idle[i] = 1
		}
		return idle, nil
	}
	if err := validateFlows(flows); err != nil {
		return nil, err
	}
	paths := make([]topology.Path, 0, len(flows))
	for _, f := range flows {
		paths = append(paths, f.Path)
	}
	universe := topology.LinkUnion(paths...)
	key := feasKey(universe, linkDemand(flows))

	tm := obs.SpanFrom(ctx).StartStage(obs.StageSession)
	defer tm.End()
	s.mu.Lock()
	if idle, ok := s.idle[key]; ok {
		s.mu.Unlock()
		tm.SetOutcome("hit")
		out := make([]float64, len(idle))
		copy(out, idle)
		return out, nil
	}
	s.mu.Unlock()
	tm.SetOutcome("miss")

	ok, sched, err := s.FeasibleDemandsContext(ctx, flows)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: background flows are not jointly schedulable")
	}
	idle := estimate.NodeIdleRatios(net, sched)
	s.mu.Lock()
	s.idle[key] = idle
	s.mu.Unlock()
	out := make([]float64, len(idle))
	copy(out, idle)
	return out, nil
}

// copySchedule hands callers their own slot slice so a memoized
// schedule cannot be mutated behind the session's back.
func copySchedule(in schedule.Schedule) schedule.Schedule {
	if len(in.Slots) == 0 {
		return in
	}
	out := in
	out.Slots = make([]schedule.Slot, len(in.Slots))
	copy(out.Slots, in.Slots)
	return out
}

// availKey names one (universe, path) LP structure. The path enters as
// per-link traversal counts — the only way it shapes the LP — so
// permutations of the same multiset share a state.
func availKey(universe []topology.LinkID, newPath topology.Path) string {
	var b strings.Builder
	for i, l := range universe {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	b.WriteByte('|')
	counts := linkCount(newPath)
	links := make([]topology.LinkID, 0, len(counts))
	for l := range counts {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for i, l := range links {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(l)))
		b.WriteByte('x')
		b.WriteString(strconv.Itoa(counts[l]))
	}
	return b.String()
}

// feasKey names one feasibility question: the universe plus the exact
// per-link demand vector (float bit patterns, so only truly identical
// demands share a verdict).
func feasKey(universe []topology.LinkID, demand map[topology.LinkID]float64) string {
	var b strings.Builder
	for i, l := range universe {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	b.WriteByte('|')
	for i, l := range universe {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(math.Float64bits(demand[l]), 16))
	}
	return b.String()
}
