package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"abw/internal/conflict"
	"abw/internal/geom"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/radio"
	"abw/internal/topology"
)

// sessionTol bounds warm-vs-cold disagreement on the availability
// optimum; both paths end on the identical simplex termination
// criterion, so only pivot-tolerance arithmetic noise separates them.
const sessionTol = 1e-7

func sessionNetwork(t *testing.T, n int, seed int64) *topology.Network {
	t.Helper()
	net, err := topology.Random(radio.NewProfile80211a(), geom.Rect{W: 500, H: 500}, n, seed)
	if err != nil {
		t.Fatalf("building network: %v", err)
	}
	return net
}

// randomPath picks a random simple path of up to 4 hops by walking
// links from a random start node.
func randomPath(rng *rand.Rand, net *topology.Network) topology.Path {
	links := net.Links()
	if len(links) == 0 {
		return nil
	}
	start := links[rng.Intn(len(links))]
	path := topology.Path{start.ID}
	cur := start.Rx
	visited := map[topology.NodeID]bool{start.Tx: true, start.Rx: true}
	for hop := 1; hop < 4; hop++ {
		var next []topology.Link
		for _, l := range links {
			if l.Tx == cur && !visited[l.Rx] {
				next = append(next, l)
			}
		}
		if len(next) == 0 {
			break
		}
		l := next[rng.Intn(len(next))]
		path = append(path, l.ID)
		visited[l.Rx] = true
		cur = l.Rx
	}
	return path
}

// TestSessionMatchesColdAvailability is the warm-start invariant at the
// model level: across randomized admission-like sequences — a fixed
// candidate path queried repeatedly while background flows accumulate —
// every session answer (status, bandwidth, sets, links) matches a cold
// AvailableBandwidth call on the same inputs.
func TestSessionMatchesColdAvailability(t *testing.T) {
	rng := rand.New(rand.NewSource(8086))
	for trial := 0; trial < 8; trial++ {
		net := sessionNetwork(t, 10, int64(100+trial))
		m := conflict.NewPhysical(net)
		cache := memo.New(0)
		sess := NewSession(m, Options{Cache: cache})

		candidate := randomPath(rng, net)
		if len(candidate) == 0 {
			continue
		}
		var background []Flow
		for step := 0; step < 6; step++ {
			got, err := sess.AvailableBandwidth(background, candidate)
			if err != nil {
				t.Fatalf("trial %d step %d: session: %v", trial, step, err)
			}
			want, err := AvailableBandwidth(m, background, candidate, Options{})
			if err != nil {
				t.Fatalf("trial %d step %d: cold: %v", trial, step, err)
			}
			if got.Status != want.Status {
				t.Fatalf("trial %d step %d: status %v, cold %v", trial, step, got.Status, want.Status)
			}
			if math.Abs(got.Bandwidth-want.Bandwidth) > sessionTol {
				t.Fatalf("trial %d step %d: bandwidth %.12g, cold %.12g",
					trial, step, got.Bandwidth, want.Bandwidth)
			}
			if len(got.Sets) != len(want.Sets) {
				t.Fatalf("trial %d step %d: %d sets, cold %d", trial, step, len(got.Sets), len(want.Sets))
			}
			for i := range want.Sets {
				if got.Sets[i].Key() != want.Sets[i].Key() {
					t.Fatalf("trial %d step %d: set %d differs", trial, step, i)
				}
			}
			// Grow the background along the same universe so the next
			// query is a pure bound change: claim part of what's left.
			if want.Status == lp.Optimal && want.Bandwidth > 0.2 {
				claim := want.Bandwidth * (0.2 + 0.3*rng.Float64())
				background = append(background, Flow{Path: candidate, Demand: claim})
			}
		}
		st := cache.Stats()
		if st.WarmResolves == 0 {
			t.Fatalf("trial %d: admission-like sequence never warm-started (stats %+v)", trial, st)
		}
	}
}

// TestSessionWarmSavesPivots pins the efficiency claim the stats
// surface reports: across a repeated-query sequence the warm resolves
// must spend fewer pivots per solve than the cold baseline.
func TestSessionWarmSavesPivots(t *testing.T) {
	net := sessionNetwork(t, 12, 7)
	m := conflict.NewPhysical(net)
	cache := memo.New(0)
	sess := NewSession(m, Options{Cache: cache})
	rng := rand.New(rand.NewSource(11))

	candidate := randomPath(rng, net)
	if len(candidate) == 0 {
		t.Skip("no path in topology")
	}
	var background []Flow
	for step := 0; step < 10; step++ {
		res, err := sess.AvailableBandwidth(background, candidate)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != lp.Optimal || res.Bandwidth < 0.1 {
			break
		}
		background = append(background, Flow{Path: candidate, Demand: res.Bandwidth * 0.3})
	}
	st := cache.Stats()
	if st.WarmResolves == 0 {
		t.Fatal("no warm resolves")
	}
	if st.WarmResolves > 0 && st.ColdPivots > 0 {
		warmPerSolve := float64(st.WarmPivots) / float64(st.WarmResolves)
		coldPerSolve := float64(st.ColdPivots) // one cold solve builds the state
		if warmPerSolve >= coldPerSolve {
			t.Fatalf("warm solves not cheaper: %.1f warm pivots/solve vs %.1f cold (stats %+v)",
				warmPerSolve, coldPerSolve, st)
		}
	}
	if st.PivotsSaved == 0 {
		t.Fatalf("no pivots reported saved: %+v", st)
	}
}

// TestSessionFeasibilityMemo checks the memoized verdict equals the
// computed one, byte-identical schedule included, and that repeats
// don't re-enumerate.
func TestSessionFeasibilityMemo(t *testing.T) {
	net := sessionNetwork(t, 9, 21)
	m := conflict.NewPhysical(net)
	cache := memo.New(0)
	sess := NewSession(m, Options{Cache: cache})
	rng := rand.New(rand.NewSource(5))

	path := randomPath(rng, net)
	if len(path) == 0 {
		t.Skip("no path in topology")
	}
	flows := []Flow{{Path: path, Demand: 1.5}}
	ok1, sched1, err := sess.FeasibleDemands(flows)
	if err != nil {
		t.Fatal(err)
	}
	okCold, schedCold, err := FeasibleDemands(m, flows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok1 != okCold {
		t.Fatalf("session verdict %v, cold %v", ok1, okCold)
	}
	ok2, sched2, err := sess.FeasibleDemands(flows)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 != ok1 {
		t.Fatal("memoized verdict flipped")
	}
	if len(sched1.Slots) != len(schedCold.Slots) || len(sched2.Slots) != len(sched1.Slots) {
		t.Fatalf("schedule slot counts differ: %d / %d / %d",
			len(sched1.Slots), len(sched2.Slots), len(schedCold.Slots))
	}
	for i := range sched1.Slots {
		if sched1.Slots[i].Set.Key() != sched2.Slots[i].Set.Key() {
			t.Fatalf("memoized schedule set %d differs", i)
		}
		//lint:ignore abw/floateq the memo contract is BIT-identical replay, not approximate
		if math.Abs(sched1.Slots[i].Share-sched2.Slots[i].Share) != 0 {
			t.Fatalf("memoized schedule share %d differs", i)
		}
	}
	// Mutating the returned schedule must not corrupt the memo.
	if len(sched2.Slots) > 0 {
		sched2.Slots[0].Share = -1
		_, sched3, err := sess.FeasibleDemands(flows)
		if err != nil {
			t.Fatal(err)
		}
		//lint:ignore abw/floateq -1 is a sentinel this test just stored; exact compare intended
		if len(sched3.Slots) > 0 && sched3.Slots[0].Share == -1 {
			t.Fatal("caller mutation leaked into the memoized schedule")
		}
	}
}

// TestSessionConcurrentQueries drives one session from many goroutines
// mixing availability and feasibility queries; run under -race in CI.
func TestSessionConcurrentQueries(t *testing.T) {
	net := sessionNetwork(t, 10, 33)
	m := conflict.NewPhysical(net)
	sess := NewSession(m, Options{Cache: memo.New(0)})
	rng := rand.New(rand.NewSource(3))
	paths := make([]topology.Path, 0, 4)
	for i := 0; i < 8 && len(paths) < 4; i++ {
		if p := randomPath(rng, net); len(p) > 0 {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		t.Skip("no paths in topology")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := paths[g%len(paths)]
			bg := []Flow{{Path: paths[(g+1)%len(paths)], Demand: 0.5}}
			for i := 0; i < 5; i++ {
				if _, err := sess.AvailableBandwidth(bg, p); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, _, err := sess.FeasibleDemands(bg); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
