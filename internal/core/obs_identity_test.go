package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/memo"
	"abw/internal/obs"
)

// TestTracedQueryByteIdentical pins the nil-span fast-path invariant
// from DESIGN.md Sec. 14: attaching a trace span to the context must
// not change a single bit of the answer — status, bandwidth (exact
// float bits), set family, link universe, and schedule — at 1/2/4/8
// workers, with and without a memo cache in the path.
func TestTracedQueryByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	net := sessionNetwork(t, 12, 99)
	m := conflict.NewPhysical(net)
	candidate := randomPath(rng, net)
	if len(candidate) == 0 {
		t.Skip("no candidate path in random topology")
	}
	background := []Flow{{Path: candidate, Demand: 0.5}}

	for _, workers := range []int{1, 2, 4, 8} {
		for _, cached := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/cache=%v", workers, cached), func(t *testing.T) {
				mkOpts := func() Options {
					o := Options{Workers: workers}
					if cached {
						o.Cache = memo.New(0)
					}
					return o
				}
				plain, err := AvailableBandwidthContext(context.Background(), m, background, candidate, mkOpts())
				if err != nil {
					t.Fatalf("uninstrumented: %v", err)
				}
				span := obs.NewSpan("identity")
				ctx := obs.WithSpan(context.Background(), span)
				traced, err := AvailableBandwidthContext(ctx, m, background, candidate, mkOpts())
				if err != nil {
					t.Fatalf("instrumented: %v", err)
				}

				if traced.Status != plain.Status {
					t.Fatalf("status %v != %v", traced.Status, plain.Status)
				}
				if math.Float64bits(traced.Bandwidth) != math.Float64bits(plain.Bandwidth) {
					t.Fatalf("bandwidth bits differ: %x != %x",
						math.Float64bits(traced.Bandwidth), math.Float64bits(plain.Bandwidth))
				}
				if len(traced.Sets) != len(plain.Sets) {
					t.Fatalf("%d sets != %d sets", len(traced.Sets), len(plain.Sets))
				}
				for i := range plain.Sets {
					if traced.Sets[i].Key() != plain.Sets[i].Key() {
						t.Fatalf("set %d: %s != %s", i, traced.Sets[i].Key(), plain.Sets[i].Key())
					}
				}
				if len(traced.Links) != len(plain.Links) {
					t.Fatalf("%d links != %d links", len(traced.Links), len(plain.Links))
				}
				for i := range plain.Links {
					if traced.Links[i] != plain.Links[i] {
						t.Fatalf("link %d: %d != %d", i, traced.Links[i], plain.Links[i])
					}
				}
				if len(traced.Schedule.Slots) != len(plain.Schedule.Slots) {
					t.Fatalf("%d slots != %d slots", len(traced.Schedule.Slots), len(plain.Schedule.Slots))
				}
				for i := range plain.Schedule.Slots {
					a, b := traced.Schedule.Slots[i], plain.Schedule.Slots[i]
					if a.Set.Key() != b.Set.Key() || math.Float64bits(a.Share) != math.Float64bits(b.Share) {
						t.Fatalf("slot %d differs: %+v != %+v", i, a, b)
					}
				}

				// And the span really did observe the work: the traced run
				// must have recorded the enumeration and LP stages.
				td := span.Trace()
				seen := map[obs.Stage]bool{}
				for _, rec := range td.Stages {
					seen[rec.Stage] = true
				}
				if !seen[obs.StageEnumerate] {
					t.Fatalf("trace missing enumerate stage: %v", span.StageNames())
				}
				if !seen[obs.StageLPSolve] {
					t.Fatalf("trace missing lp_solve stage: %v", span.StageNames())
				}
				if cached && !seen[obs.StageMemo] {
					t.Fatalf("trace missing memo stage with cache enabled: %v", span.StageNames())
				}
			})
		}
	}
}

// TestSessionTracedQueryByteIdentical is the same invariant through the
// session (warm LP) path: a traced warm resolve answers exactly like an
// untraced one.
func TestSessionTracedQueryByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	net := sessionNetwork(t, 10, 17)
	m := conflict.NewPhysical(net)
	candidate := randomPath(rng, net)
	if len(candidate) == 0 {
		t.Skip("no candidate path in random topology")
	}

	run := func(ctx context.Context) []*Result {
		sess := NewSession(m, Options{Cache: memo.New(0)})
		var background []Flow
		var out []*Result
		for step := 0; step < 4; step++ {
			res, err := sess.AvailableBandwidthContext(ctx, background, candidate)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			out = append(out, res)
			background = append(background, Flow{Path: candidate, Demand: 0.1})
		}
		return out
	}

	plain := run(context.Background())
	span := obs.NewSpan("identity-session")
	traced := run(obs.WithSpan(context.Background(), span))

	for i := range plain {
		if traced[i].Status != plain[i].Status ||
			math.Float64bits(traced[i].Bandwidth) != math.Float64bits(plain[i].Bandwidth) {
			t.Fatalf("step %d: traced (%v, %x) != plain (%v, %x)", i,
				traced[i].Status, math.Float64bits(traced[i].Bandwidth),
				plain[i].Status, math.Float64bits(plain[i].Bandwidth))
		}
	}
	// The warm path must be visible in the trace: after the first cold
	// solve the remaining steps re-solve warm.
	td := span.Trace()
	var warm int64
	for _, rec := range td.Stages {
		if rec.Stage == obs.StageLPWarm {
			warm = rec.Warm
		}
	}
	if warm == 0 {
		t.Fatalf("trace recorded no warm resolves: %v", span.StageNames())
	}
}
