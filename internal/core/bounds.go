package core

import (
	"context"
	"fmt"
	"math"

	"abw/internal/clique"
	"abw/internal/conflict"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/topology"
)

// FixedRateCliqueBound computes the classical clique upper bound of
// Eq. 7 for a path whose links are pinned to the given rates (the
// baseline inherited from the authors' earlier work [1]): with every
// link of the path carrying the same end-to-end throughput s, each
// clique C of the fixed-rate conflict graph bounds s by 1 / sum_{i in C}
// 1/r_i, and the tightest clique wins. The paper's Sec. 3.2 shows this
// bound is NOT valid once links may change rates over time.
func FixedRateCliqueBound(m conflict.Model, path topology.Path, rates []radio.Rate) (float64, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("core: empty path")
	}
	if len(path) != len(rates) {
		return 0, fmt.Errorf("core: path has %d links but %d rates", len(path), len(rates))
	}
	assignment := make([]conflict.Couple, len(path))
	for i := range path {
		if rates[i] <= 0 {
			return 0, fmt.Errorf("core: non-positive rate %v for link %d", rates[i], path[i])
		}
		assignment[i] = conflict.Couple{Link: path[i], Rate: rates[i]}
	}
	cliques, err := clique.CliquesForRateVector(m, assignment, clique.Options{})
	if err != nil {
		return 0, fmt.Errorf("core: enumerating fixed-rate cliques: %w", err)
	}
	bound := math.Inf(1)
	for _, c := range cliques {
		if t := c.UnitTransmissionTime(); t > 0 {
			if b := 1 / t; b < bound {
				bound = b
			}
		}
	}
	return bound, nil
}

// CliqueLoadFactor computes the clique time share T_ij of Sec. 3.2: the
// total transmission time per period that the given per-link throughputs
// would require inside the clique. Values above one mean the clique
// constraint is violated by the throughput vector — the paper's
// Hypothesis (8) counterexample machinery (Scenario II yields 1.2 and
// 1.05 at the optimum).
func CliqueLoadFactor(c clique.Clique, throughput map[topology.LinkID]float64) float64 {
	return c.TransmissionTime(func(l topology.LinkID) float64 { return throughput[l] })
}

// MaxCliqueLoadFactor returns the largest clique load factor over the
// maximal cliques of the given fixed rate vector (the T-hat_i of
// Sec. 3.2).
func MaxCliqueLoadFactor(m conflict.Model, assignment []conflict.Couple, throughput map[topology.LinkID]float64) (float64, error) {
	cliques, err := clique.CliquesForRateVector(m, assignment, clique.Options{})
	if err != nil {
		return 0, fmt.Errorf("core: enumerating cliques: %w", err)
	}
	maxT := 0.0
	for _, c := range cliques {
		if t := CliqueLoadFactor(c, throughput); t > maxT {
			maxT = t
		}
	}
	return maxT, nil
}

// UpperBoundLP solves the paper's Eq. 9: the rate-coupled clique upper
// bound on the available bandwidth of newPath given background flows.
// Every rate vector R_i over the link universe is assigned a time share
// gamma_i and, within it, per-link throughputs g_ik constrained by R_i's
// maximal cliques; total delivered throughput must cover demand. The
// bilinear paper form (Y = sum_i gamma_i g_i) is linearized with the
// substitution h_ik = gamma_i * g_ik:
//
//	sum_{k in C_ij} h_ik/r_ik <= gamma_i   (clique constraints, scaled)
//	0 <= h_ik <= gamma_i * r_ik
//	sum_i h_ik >= demand_k + f * I(newPath)
//	sum_i gamma_i <= 1.
//
// The number of rate vectors is capped by Options.OmegaLimit; the paper
// itself notes Omega <= Z^L and defers sparser enumerations to future
// work (see RestrictedUpperBoundLP for that heuristic).
func UpperBoundLP(m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, error) {
	return upperBoundOverVectors(context.Background(), m, background, newPath, nil, opts)
}

// UpperBoundLPContext is UpperBoundLP under a context: the Eq. 9
// simplex polls ctx between pivots; see AvailableBandwidthContext.
func UpperBoundLPContext(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, error) {
	return upperBoundOverVectors(ctx, m, background, newPath, nil, opts)
}

// RestrictedUpperBoundLP is the paper's proposed future-work heuristic:
// Eq. 9 evaluated over an explicit subset of rate vectors rather than
// the full product space. The result is the exact Eq. 9 bound for
// schedules restricted to those vectors; it remains a GLOBAL upper
// bound only when the subset contains the rate vectors some optimal
// schedule uses (Scenario II's {R1, R2}, for instance). An arbitrary
// subset may cut below the unrestricted optimum — see the package tests
// for a demonstration. Vectors are given as one couple per link of the
// universe.
func RestrictedUpperBoundLP(m conflict.Model, background []Flow, newPath topology.Path, vectors [][]conflict.Couple, opts Options) (*Result, error) {
	return RestrictedUpperBoundLPContext(context.Background(), m, background, newPath, vectors, opts)
}

// RestrictedUpperBoundLPContext is RestrictedUpperBoundLP under a
// context: the Eq. 9 simplex polls ctx between pivots; see
// AvailableBandwidthContext.
func RestrictedUpperBoundLPContext(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, vectors [][]conflict.Couple, opts Options) (*Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("core: no rate vectors supplied")
	}
	return upperBoundOverVectors(ctx, m, background, newPath, vectors, opts)
}

func upperBoundOverVectors(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, vectors [][]conflict.Couple, opts Options) (*Result, error) {
	if len(newPath) == 0 {
		return nil, fmt.Errorf("core: empty new path")
	}
	if err := validateFlows(background); err != nil {
		return nil, err
	}
	paths := make([]topology.Path, 0, len(background)+1)
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	paths = append(paths, newPath)
	universe := topology.LinkUnion(paths...)
	demand := linkDemand(background)
	newCount := linkCount(newPath)

	if vectors == nil {
		var err error
		vectors, err = enumerateRateVectors(m, universe, opts.omegaLimit())
		if err != nil {
			return nil, err
		}
	}
	if len(vectors) == 0 {
		return &Result{Status: lp.Infeasible, Links: universe}, nil
	}

	prob := lp.NewProblem(lp.Maximize)
	f := prob.AddVar("f", 1)
	gammas := make([]lp.Var, len(vectors))
	hVars := make([]map[topology.LinkID]lp.Var, len(vectors))
	shareRow := make(map[lp.Var]float64, len(vectors))

	for i, vec := range vectors {
		gammas[i] = prob.AddVar(fmt.Sprintf("gamma%d", i), 0)
		shareRow[gammas[i]] = 1
		hVars[i] = make(map[topology.LinkID]lp.Var, len(vec))
		for _, cp := range vec {
			hVars[i][cp.Link] = prob.AddVar(fmt.Sprintf("h%d_%d", i, cp.Link), 0)
		}
		// Clique constraints for this rate vector, scaled by gamma_i.
		cliques, err := clique.CliquesForRateVector(m, vec, clique.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: cliques of rate vector %d: %w", i, err)
		}
		for j, c := range cliques {
			row := make(map[lp.Var]float64, c.Len()+1)
			for _, cp := range c.Couples {
				row[hVars[i][cp.Link]] = 1 / float64(cp.Rate)
			}
			row[gammas[i]] = -1
			if err := prob.AddConstraint(fmt.Sprintf("clique%d_%d", i, j), row, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		// Per-link capacity within the vector's share: h <= gamma * r.
		for _, cp := range vec {
			row := map[lp.Var]float64{hVars[i][cp.Link]: 1, gammas[i]: -float64(cp.Rate)}
			if err := prob.AddConstraint(fmt.Sprintf("cap%d_%d", i, cp.Link), row, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}
	if err := prob.AddConstraint("total-share", shareRow, lp.LE, 1); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Demand coverage.
	for _, link := range universe {
		row := make(map[lp.Var]float64)
		for i := range vectors {
			if v, ok := hVars[i][link]; ok {
				row[v] = 1
			}
		}
		if c := newCount[link]; c > 0 {
			row[f] = -float64(c)
		}
		if len(row) == 0 && demand[link] <= 0 {
			continue
		}
		if err := prob.AddConstraint(fmt.Sprintf("demand-%d", link), row, lp.GE, demand[link]); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	sol, err := prob.SolveContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: solving Eq.9 LP: %w", err)
	}
	res := &Result{Status: sol.Status, Links: universe}
	if sol.Status == lp.Optimal {
		res.Bandwidth = sol.Objective
	}
	return res, nil
}

// enumerateRateVectors lists the product space of alone-supported rates
// over the universe — the Omega of Sec. 3.2 — failing if it exceeds
// limit. Links with no supported rate make the space empty.
func enumerateRateVectors(m conflict.Model, universe []topology.LinkID, limit int) ([][]conflict.Couple, error) {
	size := 1
	ratesPer := make([][]radio.Rate, len(universe))
	for i, l := range universe {
		ratesPer[i] = m.Rates(l)
		if len(ratesPer[i]) == 0 {
			return nil, nil
		}
		size *= len(ratesPer[i])
		if size > limit {
			return nil, fmt.Errorf("core: rate-vector space exceeds limit %d (paper: Omega <= Z^L); use RestrictedUpperBoundLP", limit)
		}
	}
	var out [][]conflict.Couple
	cur := make([]conflict.Couple, len(universe))
	var rec func(idx int)
	rec = func(idx int) {
		if idx == len(universe) {
			vec := make([]conflict.Couple, len(cur))
			copy(vec, cur)
			out = append(out, vec)
			return
		}
		for _, r := range ratesPer[idx] {
			cur[idx] = conflict.Couple{Link: universe[idx], Rate: r}
			rec(idx + 1)
		}
	}
	rec(0)
	return out, nil
}

// PathCapacity returns the exact capacity of a path with no background
// traffic — the special case the authors' earlier work [1] addressed,
// included as a baseline.
func PathCapacity(m conflict.Model, path topology.Path, opts Options) (*Result, error) {
	return AvailableBandwidth(m, nil, path, opts)
}
