// Package core implements the paper's primary contribution: the exact
// available-bandwidth model for a path with background traffic in a
// multirate, multihop wireless network (Sec. 2), together with the
// clique-derived upper bounds and independent-set lower bounds of
// Sec. 3.
//
// The exact model (Eq. 6) is a linear program over the maximal
// independent sets (coupled with maximum supported rate vectors) of the
// union of all involved paths: time shares lambda_alpha are assigned to
// the sets so that every background demand is met, the total share stays
// within one, and the throughput of the new path is maximized. Because
// the same link may appear with different rates in different sets, the
// optimum exploits time-varying link adaptation — the effect that breaks
// classical clique bounds (Sec. 3.2, reproduced in this package's
// bounds.go).
package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/memo"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// Flow is a routed traffic demand: a path and its end-to-end throughput
// requirement in Mbps.
type Flow struct {
	Path   topology.Path
	Demand float64
}

// Options configure the availability computations.
type Options struct {
	// SetLimit caps independent-set enumeration (0 = package default).
	SetLimit int
	// OmegaLimit caps the number of rate vectors the Eq. 9 upper-bound
	// LP enumerates (0 = 4096). The paper notes Omega can reach Z^L and
	// proposes restricted enumerations; exceeding the cap is an error.
	OmegaLimit int
	// Workers sets the number of concurrent enumeration workers (see
	// indepset.Options.Workers): 0 picks automatically, 1 or negative
	// forces sequential, >1 forces that many workers.
	Workers int
	// Cache, when non-nil, memoizes complete set families across calls
	// keyed by (model fingerprint, universe, enumeration limit) and
	// collects solver statistics. When the cache carries an on-disk
	// store (memo.Cache.SetStore), misses additionally consult and
	// refill the spill directory, so the memo survives process
	// restarts. Safe because complete enumeration is deterministic: a
	// cached family — in memory or reloaded and revalidated from disk —
	// is byte-identical to a fresh one (DESIGN.md Sec. 8 and 11), so
	// results do not change — only their cost.
	Cache *memo.Cache
}

// indepOptions translates the core options into enumeration options.
func (o Options) indepOptions() indepset.Options {
	return indepset.Options{Limit: o.SetLimit, Workers: o.Workers}
}

// enumerate runs a complete maximal-set enumeration through the cache
// when one is configured (a nil cache passes straight through). The
// context cancels the walk; cancelled families are never cached.
func (o Options) enumerate(ctx context.Context, m conflict.Model, universe []topology.LinkID) ([]indepset.Set, error) {
	return o.Cache.EnumerateContext(ctx, m, universe, o.indepOptions())
}

// enumeratePartial is enumerate with graceful truncation; truncated
// families are never cached (their content depends on scheduling).
func (o Options) enumeratePartial(ctx context.Context, m conflict.Model, universe []topology.LinkID) ([]indepset.Set, bool, error) {
	return o.Cache.EnumeratePartialContext(ctx, m, universe, o.indepOptions())
}

func (o Options) omegaLimit() int {
	if o.OmegaLimit <= 0 {
		return 4096
	}
	return o.OmegaLimit
}

// Result is the outcome of an availability computation.
type Result struct {
	// Status is Optimal when the background demands are satisfiable;
	// Infeasible when the background alone cannot be delivered.
	Status lp.Status
	// Bandwidth is the maximum supportable throughput of the new path in
	// Mbps (the f_{K+1} of Eq. 6); meaningful only when Status is
	// Optimal.
	Bandwidth float64
	// Schedule delivers the background demands plus Bandwidth on the new
	// path; meaningful only when Status is Optimal.
	Schedule schedule.Schedule
	// Sets are the independent sets made available to the optimizer.
	Sets []indepset.Set
	// Links is the link universe P (union of all involved paths).
	Links []topology.LinkID
}

// AvailableBandwidth solves the paper's exact model (Eq. 6): the maximum
// throughput deliverable over newPath while every background flow keeps
// its demand, assuming globally optimal link scheduling. It enumerates
// the maximal independent sets of the union of all involved paths.
func AvailableBandwidth(m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, error) {
	return AvailableBandwidthContext(context.Background(), m, background, newPath, opts)
}

// AvailableBandwidthContext is AvailableBandwidth under a context: both
// the set enumeration and the Eq. 6 simplex poll ctx and abandon the
// computation with an error satisfying errors.Is(err,
// cancel.ErrCanceled) once it is cancelled. An uncancelled call returns
// exactly what AvailableBandwidth would.
func AvailableBandwidthContext(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, error) {
	if len(newPath) == 0 {
		return nil, fmt.Errorf("core: empty new path")
	}
	if err := validateFlows(background); err != nil {
		return nil, err
	}
	paths := make([]topology.Path, 0, len(background)+1)
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	paths = append(paths, newPath)
	universe := topology.LinkUnion(paths...)

	sets, err := opts.enumerate(ctx, m, universe)
	if err != nil {
		return nil, fmt.Errorf("core: enumerating independent sets: %w", err)
	}
	return solveWithSetsCounted(ctx, m, background, newPath, universe, sets, opts.Cache)
}

// AvailableBandwidthLowerBound is AvailableBandwidth with graceful
// degradation for large instances: when independent-set enumeration
// exceeds the limit, the LP runs over the truncated (still sound) set
// family and the result is a LOWER bound on the true availability
// (Sec. 3.3); Truncated reports when that happened.
func AvailableBandwidthLowerBound(m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, bool, error) {
	return AvailableBandwidthLowerBoundContext(context.Background(), m, background, newPath, opts)
}

// AvailableBandwidthLowerBoundContext is AvailableBandwidthLowerBound
// under a context; see AvailableBandwidthContext. Cancellation wins
// over truncation: a cancelled call returns ErrCanceled and no bound.
func AvailableBandwidthLowerBoundContext(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, opts Options) (*Result, bool, error) {
	if len(newPath) == 0 {
		return nil, false, fmt.Errorf("core: empty new path")
	}
	if err := validateFlows(background); err != nil {
		return nil, false, err
	}
	paths := make([]topology.Path, 0, len(background)+1)
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	paths = append(paths, newPath)
	universe := topology.LinkUnion(paths...)
	sets, truncated, err := opts.enumeratePartial(ctx, m, universe)
	if err != nil {
		return nil, false, fmt.Errorf("core: enumerating independent sets: %w", err)
	}
	res, err := solveWithSetsCounted(ctx, m, background, newPath, universe, sets, opts.Cache)
	if err != nil {
		return nil, truncated, err
	}
	return res, truncated, nil
}

// AvailableBandwidthWithSets solves the Eq. 6 LP restricted to the given
// independent sets. With all maximal sets it is exact; with a subset it
// is the lower bound of Sec. 3.3 (the restricted solution space is
// contained in the true one).
func AvailableBandwidthWithSets(m conflict.Model, background []Flow, newPath topology.Path, sets []indepset.Set) (*Result, error) {
	return AvailableBandwidthWithSetsContext(context.Background(), m, background, newPath, sets)
}

// AvailableBandwidthWithSetsContext is AvailableBandwidthWithSets under
// a context; see AvailableBandwidthContext.
func AvailableBandwidthWithSetsContext(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, sets []indepset.Set) (*Result, error) {
	if len(newPath) == 0 {
		return nil, fmt.Errorf("core: empty new path")
	}
	if err := validateFlows(background); err != nil {
		return nil, err
	}
	paths := make([]topology.Path, 0, len(background)+1)
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	paths = append(paths, newPath)
	universe := topology.LinkUnion(paths...)
	return solveWithSets(ctx, m, background, newPath, universe, sets)
}

func solveWithSets(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, universe []topology.LinkID, sets []indepset.Set) (*Result, error) {
	return solveWithSetsCounted(ctx, m, background, newPath, universe, sets, nil)
}

// solveWithSetsCounted is solveWithSets reporting the solve's pivot
// count into the (possibly nil) cache's cold-solve counters.
func solveWithSetsCounted(ctx context.Context, m conflict.Model, background []Flow, newPath topology.Path, universe []topology.LinkID, sets []indepset.Set, cache *memo.Cache) (*Result, error) {
	demand := linkDemand(background)
	newCount := linkCount(newPath)

	prob := lp.NewProblem(lp.Maximize)
	prob.Reserve(len(sets)+1, len(universe)+1)
	lambdas := addLambdaVars(prob, sets, 0)
	f := prob.AddVar("f", 1)

	// Total share within one period.
	shareRow := make(map[lp.Var]float64, len(lambdas))
	for _, v := range lambdas {
		shareRow[v] = 1
	}
	if len(shareRow) > 0 {
		if err := prob.AddOwnedConstraint("total-share", shareRow, lp.LE, 1); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	// Per-link throughput covers background demand plus f on the new
	// path.
	rows := lambdaRows(universe, sets, lambdas)
	for li, link := range universe {
		row := rows[li]
		if c := newCount[link]; c > 0 {
			row[f] = -float64(c)
		}
		if len(row) == 0 && demand[link] <= 0 {
			continue
		}
		if err := prob.AddOwnedConstraint(linkConsName(link), row, lp.GE, demand[link]); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	sol, err := prob.SolveContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: solving Eq.6 LP: %w", err)
	}
	cache.AddSolvePivots(false, sol.Pivots, 0)
	res := &Result{Status: sol.Status, Sets: sets, Links: universe}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Bandwidth = sol.Objective
	var sched schedule.Schedule
	for i, s := range sets {
		if share := sol.Value(lambdas[i]); share > 1e-12 {
			sched.Slots = append(sched.Slots, schedule.Slot{Set: s, Share: share})
		}
	}
	res.Schedule = sched.Normalized()
	return res, nil
}

// FeasibleDemands reports whether the given flows can all be delivered
// simultaneously (the feasibility side of Eq. 2/4), and returns a
// delivering schedule when they can.
func FeasibleDemands(m conflict.Model, flows []Flow, opts Options) (bool, schedule.Schedule, error) {
	return FeasibleDemandsContext(context.Background(), m, flows, opts)
}

// FeasibleDemandsContext is FeasibleDemands under a context; see
// AvailableBandwidthContext. A cancelled call returns no verdict:
// callers must not treat ErrCanceled as "infeasible".
func FeasibleDemandsContext(ctx context.Context, m conflict.Model, flows []Flow, opts Options) (bool, schedule.Schedule, error) {
	if err := validateFlows(flows); err != nil {
		return false, schedule.Schedule{}, err
	}
	if len(flows) == 0 {
		return true, schedule.Schedule{}, nil
	}
	paths := make([]topology.Path, 0, len(flows))
	for _, f := range flows {
		paths = append(paths, f.Path)
	}
	universe := topology.LinkUnion(paths...)
	sets, err := opts.enumerate(ctx, m, universe)
	if err != nil {
		return false, schedule.Schedule{}, fmt.Errorf("core: enumerating independent sets: %w", err)
	}

	// Reuse the Eq. 6 machinery with the last flow's demand moved into
	// the background: treat all flows as background and maximize the
	// leftover share (equivalently: any feasible solution proves
	// deliverability).
	demand := linkDemand(flows)
	prob := lp.NewProblem(lp.Maximize)
	prob.Reserve(len(sets), len(universe)+1)
	lambdas := addLambdaVars(prob, sets, -1)
	shareRow := make(map[lp.Var]float64, len(sets))
	for _, v := range lambdas {
		shareRow[v] = 1
	}
	if len(shareRow) > 0 {
		if err := prob.AddOwnedConstraint("total-share", shareRow, lp.LE, 1); err != nil {
			return false, schedule.Schedule{}, fmt.Errorf("core: %w", err)
		}
	}
	rows := lambdaRows(universe, sets, lambdas)
	for li, link := range universe {
		if demand[link] <= 0 {
			continue
		}
		row := rows[li]
		if len(row) == 0 {
			return false, schedule.Schedule{}, nil // demanded link can never transmit
		}
		if err := prob.AddOwnedConstraint(linkConsName(link), row, lp.GE, demand[link]); err != nil {
			return false, schedule.Schedule{}, fmt.Errorf("core: %w", err)
		}
	}
	sol, err := prob.SolveContext(ctx)
	if err != nil {
		return false, schedule.Schedule{}, fmt.Errorf("core: solving feasibility LP: %w", err)
	}
	opts.Cache.AddSolvePivots(false, sol.Pivots, 0)
	if sol.Status != lp.Optimal {
		return false, schedule.Schedule{}, nil
	}
	var sched schedule.Schedule
	for i, s := range sets {
		if share := sol.Value(lambdas[i]); share > 1e-12 {
			sched.Slots = append(sched.Slots, schedule.Slot{Set: s, Share: share})
		}
	}
	return true, sched.Normalized(), nil
}

// MaxDemandScale returns the largest theta such that every new flow j
// can be delivered at theta times its demand alongside the background
// (the paper's multi-flow extension of Sec. 2.5). theta >= 1 means the
// new flows are jointly admissible. The second return is the delivering
// schedule at the optimum.
func MaxDemandScale(m conflict.Model, background, newFlows []Flow, opts Options) (float64, schedule.Schedule, error) {
	return MaxDemandScaleContext(context.Background(), m, background, newFlows, opts)
}

// MaxDemandScaleContext is MaxDemandScale under a context; see
// AvailableBandwidthContext.
func MaxDemandScaleContext(ctx context.Context, m conflict.Model, background, newFlows []Flow, opts Options) (float64, schedule.Schedule, error) {
	if len(newFlows) == 0 {
		return 0, schedule.Schedule{}, fmt.Errorf("core: no new flows")
	}
	if err := validateFlows(background); err != nil {
		return 0, schedule.Schedule{}, err
	}
	if err := validateFlows(newFlows); err != nil {
		return 0, schedule.Schedule{}, err
	}
	for _, f := range newFlows {
		if f.Demand <= 0 {
			return 0, schedule.Schedule{}, fmt.Errorf("core: new flow demand must be positive, got %g", f.Demand)
		}
	}
	paths := make([]topology.Path, 0, len(background)+len(newFlows))
	for _, f := range background {
		paths = append(paths, f.Path)
	}
	for _, f := range newFlows {
		paths = append(paths, f.Path)
	}
	universe := topology.LinkUnion(paths...)
	sets, err := opts.enumerate(ctx, m, universe)
	if err != nil {
		return 0, schedule.Schedule{}, fmt.Errorf("core: enumerating independent sets: %w", err)
	}

	bgDemand := linkDemand(background)
	// Per-link coefficient of theta: sum over new flows of demand *
	// occurrences.
	thetaCoef := make(map[topology.LinkID]float64)
	for _, f := range newFlows {
		for _, l := range f.Path {
			thetaCoef[l] += f.Demand
		}
	}

	prob := lp.NewProblem(lp.Maximize)
	prob.Reserve(len(sets)+1, len(universe)+1)
	lambdas := addLambdaVars(prob, sets, 0)
	shareRow := make(map[lp.Var]float64, len(sets))
	for _, v := range lambdas {
		shareRow[v] = 1
	}
	theta := prob.AddVar("theta", 1)
	if len(shareRow) > 0 {
		if err := prob.AddOwnedConstraint("total-share", shareRow, lp.LE, 1); err != nil {
			return 0, schedule.Schedule{}, fmt.Errorf("core: %w", err)
		}
	}
	rows := lambdaRows(universe, sets, lambdas)
	for li, link := range universe {
		row := rows[li]
		if c := thetaCoef[link]; c > 0 {
			row[theta] = -c
		}
		if len(row) == 0 && bgDemand[link] <= 0 {
			continue
		}
		if err := prob.AddOwnedConstraint(linkConsName(link), row, lp.GE, bgDemand[link]); err != nil {
			return 0, schedule.Schedule{}, fmt.Errorf("core: %w", err)
		}
	}
	sol, err := prob.SolveContext(ctx)
	if err != nil {
		return 0, schedule.Schedule{}, fmt.Errorf("core: solving scale LP: %w", err)
	}
	opts.Cache.AddSolvePivots(false, sol.Pivots, 0)
	if sol.Status != lp.Optimal {
		return 0, schedule.Schedule{}, nil
	}
	var sched schedule.Schedule
	for i, s := range sets {
		if share := sol.Value(lambdas[i]); share > 1e-12 {
			sched.Slots = append(sched.Slots, schedule.Slot{Set: s, Share: share})
		}
	}
	return sol.Objective, sched.Normalized(), nil
}

// addLambdaVars declares one time-share variable per independent set,
// named lambda[<set key>] with the given objective coefficient.
func addLambdaVars(prob *lp.Problem, sets []indepset.Set, objCoef float64) []lp.Var {
	lambdas := make([]lp.Var, len(sets))
	for i, s := range sets {
		lambdas[i] = prob.AddVar("lambda["+s.Key()+"]", objCoef)
	}
	return lambdas
}

// lambdaRows builds, for every universe link (result aligned with
// universe order), the Eq. 6 throughput row mapping each set's lambda to
// the rate the set serves that link at — one pass over each set's
// couples instead of a per-link scan of every set. Rows come back ready
// to extend (the caller may add f/theta columns) and links no set serves
// get empty rows.
func lambdaRows(universe []topology.LinkID, sets []indepset.Set, lambdas []lp.Var) []map[lp.Var]float64 {
	rows := make([]map[lp.Var]float64, len(universe))
	for i := range universe {
		rows[i] = make(map[lp.Var]float64)
	}
	// universe comes from topology.LinkUnion / indepset enumeration and
	// is sorted ascending; locate each couple's row by binary search.
	find := func(link topology.LinkID) int {
		lo, hi := 0, len(universe)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if universe[mid] < link {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(universe) && universe[lo] == link {
			return lo
		}
		return -1
	}
	for i, s := range sets {
		for _, c := range s.Couples {
			li := find(c.Link)
			if li < 0 || c.Rate <= 0 {
				continue
			}
			row := rows[li]
			// First occurrence wins on (malformed) duplicate links,
			// matching Set.Rate's behavior.
			if _, dup := row[lambdas[i]]; !dup {
				row[lambdas[i]] = float64(c.Rate)
			}
		}
	}
	return rows
}

func linkConsName(link topology.LinkID) string {
	return "link-" + strconv.Itoa(int(link))
}

func validateFlows(flows []Flow) error {
	for i, f := range flows {
		if len(f.Path) == 0 {
			return fmt.Errorf("core: flow %d has empty path", i)
		}
		if f.Demand < 0 || math.IsNaN(f.Demand) || math.IsInf(f.Demand, 0) {
			return fmt.Errorf("core: flow %d has invalid demand %g", i, f.Demand)
		}
	}
	return nil
}

// linkDemand aggregates per-link background demand: a flow contributes
// its demand to every occurrence of a link on its path.
func linkDemand(flows []Flow) map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64)
	for _, f := range flows {
		for _, l := range f.Path {
			out[l] += f.Demand
		}
	}
	return out
}

func linkCount(path topology.Path) map[topology.LinkID]int {
	out := make(map[topology.LinkID]int, len(path))
	for _, l := range path {
		out[l]++
	}
	return out
}
