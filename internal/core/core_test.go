package core

import (
	"math"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/lp"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

const eps = 1e-9

// TestScenarioIIExactBandwidth is the paper's headline number: the
// 4-hop chain of Fig. 1 supports exactly f = 16.2 Mbps end to end under
// optimal multirate scheduling (Sec. 5.1).
func TestScenarioIIExactBandwidth(t *testing.T) {
	s := scenario.NewScenarioII()
	res, err := AvailableBandwidth(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Bandwidth-16.2) > eps {
		t.Errorf("bandwidth = %.6f, want 16.2", res.Bandwidth)
	}
	// The extracted schedule must be valid and deliver f on every hop.
	if err := res.Schedule.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	for _, l := range s.Links() {
		if got := res.Schedule.Throughput(l); got < 16.2-1e-6 {
			t.Errorf("schedule delivers %.6f on L%d, want >= 16.2", got, l+1)
		}
	}
	if res.Schedule.TotalShare() > 1+eps {
		t.Errorf("total share %.9f > 1", res.Schedule.TotalShare())
	}
}

// TestScenarioIIFixedRateBounds reproduces the two fixed-rate clique
// bounds of Sec. 5.1, both strictly below the multirate optimum:
// R1 = (54,54,54,54) gives 13.5, R2 = (36,54,54,54) gives 108/7 ~ 15.43.
func TestScenarioIIFixedRateBounds(t *testing.T) {
	s := scenario.NewScenarioII()
	b1, err := FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{54, 54, 54, 54})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1-13.5) > eps {
		t.Errorf("R1 bound = %.6f, want 13.5", b1)
	}
	b2, err := FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{36, 54, 54, 54})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b2-108.0/7) > eps {
		t.Errorf("R2 bound = %.6f, want 108/7 = %.6f", b2, 108.0/7)
	}
	if b1 >= 16.2 || b2 >= 16.2 {
		t.Errorf("fixed-rate bounds (%.4f, %.4f) must both be < 16.2", b1, b2)
	}
}

// TestScenarioIICliqueViolation reproduces the Hypothesis (8)
// counterexample: at the optimum throughput vector y = (16.2,...), the
// max clique load factors are 1.2 under R1 and 1.05 under R2 — both
// above one, so no clique constraint holds.
func TestScenarioIICliqueViolation(t *testing.T) {
	s := scenario.NewScenarioII()
	y := map[topology.LinkID]float64{s.L1: 16.2, s.L2: 16.2, s.L3: 16.2, s.L4: 16.2}

	r1 := []conflict.Couple{
		{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}
	t1, err := MaxCliqueLoadFactor(s.Model, r1, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-1.2) > eps {
		t.Errorf("R1 max load factor = %.6f, want 1.2", t1)
	}

	r2 := []conflict.Couple{
		{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54},
	}
	t2, err := MaxCliqueLoadFactor(s.Model, r2, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t2-1.05) > eps {
		t.Errorf("R2 max load factor = %.6f, want 1.05", t2)
	}
}

// TestScenarioIIUpperBoundLP checks Eq. 9: the rate-coupled clique LP
// upper-bounds the exact optimum and beats (is above) every fixed-rate
// clique bound.
func TestScenarioIIUpperBoundLP(t *testing.T) {
	s := scenario.NewScenarioII()
	res, err := UpperBoundLP(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Bandwidth < 16.2-eps {
		t.Errorf("Eq.9 bound = %.6f, must be >= exact 16.2", res.Bandwidth)
	}
	if res.Bandwidth < 108.0/7-eps {
		t.Errorf("Eq.9 bound = %.6f below the best fixed-rate bound", res.Bandwidth)
	}
}

// TestScenarioIILowerBounds checks Sec. 3.3: restricting the LP to a
// subset of the maximal independent sets lower-bounds the optimum, and
// grows monotonically as sets are added back.
func TestScenarioIILowerBounds(t *testing.T) {
	s := scenario.NewScenarioII()
	sets, err := indepset.Enumerate(s.Model, s.Links(), indepset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("expected 4 maximal sets, got %d", len(sets))
	}
	prev := -1.0
	for k := 1; k <= len(sets); k++ {
		res, err := AvailableBandwidthWithSets(s.Model, nil, s.Path, sets[:k])
		if err != nil {
			t.Fatal(err)
		}
		var bw float64
		if res.Status == lp.Optimal {
			bw = res.Bandwidth
		}
		if bw < prev-eps {
			t.Errorf("lower bound decreased from %.6f to %.6f with %d sets", prev, bw, k)
		}
		if bw > 16.2+eps {
			t.Errorf("lower bound %.6f exceeds exact optimum with %d sets", bw, k)
		}
		prev = bw
	}
	if math.Abs(prev-16.2) > eps {
		t.Errorf("with all maximal sets the bound must equal the optimum, got %.6f", prev)
	}
}

// TestScenarioIAvailableBandwidth is the introduction's worked example:
// background time share lambda on L1 and on L2 (non-overlapping links),
// new flow on L3 which conflicts with both. The optimum overlaps L1 and
// L2 and leaves (1-lambda)*r for L3 — idle-time estimation would only
// admit (1-2*lambda)*r.
func TestScenarioIAvailableBandwidth(t *testing.T) {
	const lambda = 0.3
	s := scenario.NewScenarioI(54)
	bg := []Flow{
		{Path: topology.Path{s.L1}, Demand: lambda * 54},
		{Path: topology.Path{s.L2}, Demand: lambda * 54},
	}
	res, err := AvailableBandwidth(s.Model, bg, topology.Path{s.L3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := (1 - lambda) * 54
	if math.Abs(res.Bandwidth-want) > eps {
		t.Errorf("bandwidth = %.6f, want (1-lambda)*54 = %.6f", res.Bandwidth, want)
	}
	// The schedule overlaps L1 and L2 into the same slot.
	if err := res.Schedule.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestBackgroundInfeasible(t *testing.T) {
	// Demand beyond channel capacity on a single link.
	s := scenario.NewScenarioI(54)
	bg := []Flow{{Path: topology.Path{s.L1}, Demand: 60}}
	res, err := AvailableBandwidth(s.Model, bg, topology.Path{s.L3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestFeasibleDemands(t *testing.T) {
	s := scenario.NewScenarioI(54)
	ok, sched, err := FeasibleDemands(s.Model, []Flow{
		{Path: topology.Path{s.L1}, Demand: 20},
		{Path: topology.Path{s.L2}, Demand: 20},
		{Path: topology.Path{s.L3}, Demand: 20},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("20+20+20 should be feasible (L1,L2 overlap)")
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if !sched.Delivers(map[topology.LinkID]float64{s.L1: 20, s.L2: 20, s.L3: 20}, 1e-6) {
		t.Error("schedule does not deliver the demands")
	}

	ok, _, err = FeasibleDemands(s.Model, []Flow{
		{Path: topology.Path{s.L1}, Demand: 30},
		{Path: topology.Path{s.L3}, Demand: 30},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("30+30 over conflicting links exceeds 54: should be infeasible")
	}

	ok, _, err = FeasibleDemands(s.Model, nil, Options{})
	if err != nil || !ok {
		t.Errorf("no flows should be trivially feasible: ok=%v err=%v", ok, err)
	}
}

func TestMaxDemandScale(t *testing.T) {
	s := scenario.NewScenarioII()
	// One new flow on the chain with demand 8.1: optimum 16.2 gives
	// theta = 2.
	theta, sched, err := MaxDemandScale(s.Model, nil, []Flow{{Path: s.Path, Demand: 8.1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-2) > eps {
		t.Errorf("theta = %.6f, want 2", theta)
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	// Two identical flows split the capacity: theta = 1.
	theta, _, err = MaxDemandScale(s.Model, nil, []Flow{
		{Path: s.Path, Demand: 8.1},
		{Path: s.Path, Demand: 8.1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-1) > eps {
		t.Errorf("two flows: theta = %.6f, want 1", theta)
	}
}

func TestMaxDemandScaleValidation(t *testing.T) {
	s := scenario.NewScenarioII()
	if _, _, err := MaxDemandScale(s.Model, nil, nil, Options{}); err == nil {
		t.Error("no new flows: expected error")
	}
	if _, _, err := MaxDemandScale(s.Model, nil, []Flow{{Path: s.Path, Demand: 0}}, Options{}); err == nil {
		t.Error("zero demand: expected error")
	}
}

func TestValidation(t *testing.T) {
	s := scenario.NewScenarioII()
	if _, err := AvailableBandwidth(s.Model, nil, nil, Options{}); err == nil {
		t.Error("empty new path: expected error")
	}
	bad := []Flow{{Path: nil, Demand: 1}}
	if _, err := AvailableBandwidth(s.Model, bad, s.Path, Options{}); err == nil {
		t.Error("background with empty path: expected error")
	}
	negative := []Flow{{Path: s.Path, Demand: -1}}
	if _, err := AvailableBandwidth(s.Model, negative, s.Path, Options{}); err == nil {
		t.Error("negative demand: expected error")
	}
	if _, err := FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{54}); err == nil {
		t.Error("rate length mismatch: expected error")
	}
	if _, err := FixedRateCliqueBound(s.Model, nil, nil); err == nil {
		t.Error("empty path: expected error")
	}
	if _, err := FixedRateCliqueBound(s.Model, s.Path, []radio.Rate{0, 54, 54, 54}); err == nil {
		t.Error("zero rate: expected error")
	}
	if _, err := RestrictedUpperBoundLP(s.Model, nil, s.Path, nil, Options{}); err == nil {
		t.Error("no vectors: expected error")
	}
}

func TestUpperBoundOmegaLimit(t *testing.T) {
	s := scenario.NewScenarioII()
	if _, err := UpperBoundLP(s.Model, nil, s.Path, Options{OmegaLimit: 3}); err == nil {
		t.Error("Omega limit 3 < 16: expected error")
	}
}

func TestRestrictedUpperBound(t *testing.T) {
	s := scenario.NewScenarioII()
	// Only the two rate vectors the paper discusses: R1 all-54 and
	// R2 = (36,54,54,54).
	vectors := [][]conflict.Couple{
		{{Link: s.L1, Rate: 54}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54}},
		{{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 54}, {Link: s.L3, Rate: 54}, {Link: s.L4, Rate: 54}},
	}
	restricted, err := RestrictedUpperBoundLP(s.Model, nil, s.Path, vectors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := UpperBoundLP(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restricted.Status != lp.Optimal || full.Status != lp.Optimal {
		t.Fatalf("statuses: restricted=%v full=%v", restricted.Status, full.Status)
	}
	// Restricting vectors shrinks the feasible region: bound can only
	// drop, but must stay above the exact optimum 16.2 (both the paper's
	// vectors support the optimal schedule).
	if restricted.Bandwidth > full.Bandwidth+eps {
		t.Errorf("restricted bound %.6f above full bound %.6f", restricted.Bandwidth, full.Bandwidth)
	}
	if restricted.Bandwidth < 16.2-eps {
		t.Errorf("restricted bound %.6f below the exact optimum", restricted.Bandwidth)
	}
}

func TestPathCapacityEqualsAvailableWithNoBackground(t *testing.T) {
	s := scenario.NewScenarioII()
	cap1, err := PathCapacity(s.Model, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	avail, err := AvailableBandwidth(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap1.Bandwidth-avail.Bandwidth) > eps {
		t.Errorf("PathCapacity %.6f != AvailableBandwidth %.6f", cap1.Bandwidth, avail.Bandwidth)
	}
}

// TestBoundsSandwichPhysicalChain checks lower <= exact <= Eq.9 upper on
// a geometric chain with the physical SINR model and background traffic.
func TestBoundsSandwichPhysicalChain(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 55)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	bg := []Flow{{Path: topology.Path{path[0]}, Demand: 5}}

	exact, err := AvailableBandwidth(m, bg, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != lp.Optimal {
		t.Fatalf("exact status = %v", exact.Status)
	}

	upper, err := UpperBoundLP(m, bg, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if upper.Status != lp.Optimal {
		t.Fatalf("upper status = %v", upper.Status)
	}
	if upper.Bandwidth < exact.Bandwidth-1e-6 {
		t.Errorf("upper bound %.6f below exact %.6f", upper.Bandwidth, exact.Bandwidth)
	}

	// Lower bound from half of the maximal sets.
	half := exact.Sets[:(len(exact.Sets)+1)/2]
	lower, err := AvailableBandwidthWithSets(m, bg, path, half)
	if err != nil {
		t.Fatal(err)
	}
	lowerBW := 0.0
	if lower.Status == lp.Optimal {
		lowerBW = lower.Bandwidth
	}
	if lowerBW > exact.Bandwidth+1e-6 {
		t.Errorf("lower bound %.6f above exact %.6f", lowerBW, exact.Bandwidth)
	}
}

// TestScenarioIIScheduleMatchesPaperStructure verifies the optimal
// schedule uses the (L1,36)+(L4,54) link-adaptation slot — the paper's
// key structural insight.
func TestScenarioIIScheduleMatchesPaperStructure(t *testing.T) {
	s := scenario.NewScenarioII()
	res, err := AvailableBandwidth(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, slot := range res.Schedule.Slots {
		//lint:ignore abw/floateq schedule slots carry the declared rate couples verbatim
		if slot.Set.Rate(s.L1) == 36 && slot.Set.Rate(s.L4) == 54 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("optimal schedule %v does not use the (L1,36)+(L4,54) slot", &res.Schedule)
	}
}

// TestRestrictedUpperBoundCaveat demonstrates the documented caveat: a
// rate-vector subset that misses the optimal schedule's vectors can cut
// below the true optimum. All-36 pins the chain to its two 3-link
// cliques ({L1,L2,L3} and {L2,L3,L4}): 36/3 = 12 < 16.2.
func TestRestrictedUpperBoundCaveat(t *testing.T) {
	s := scenario.NewScenarioII()
	only36 := [][]conflict.Couple{{
		{Link: s.L1, Rate: 36}, {Link: s.L2, Rate: 36}, {Link: s.L3, Rate: 36}, {Link: s.L4, Rate: 36},
	}}
	res, err := RestrictedUpperBoundLP(s.Model, nil, s.Path, only36, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Bandwidth-12) > eps {
		t.Errorf("all-36 restricted bound = %.4f, want 36/3 = 12", res.Bandwidth)
	}
	if res.Bandwidth >= 16.2 {
		t.Error("the caveat case should sit BELOW the true optimum")
	}
}

// TestAvailableBandwidthLowerBound checks the graceful-degradation
// path: on small instances it matches the exact value; under a tight
// enumeration limit it reports truncation and stays at or below exact.
func TestAvailableBandwidthLowerBound(t *testing.T) {
	s := scenario.NewScenarioII()
	res, truncated, err := AvailableBandwidthLowerBound(s.Model, nil, s.Path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("Scenario II should not truncate")
	}
	if math.Abs(res.Bandwidth-16.2) > eps {
		t.Errorf("untruncated lower bound = %.4f, want the exact 16.2", res.Bandwidth)
	}

	// A wide "path" of 12 mutually compatible table links explodes the
	// enumeration under a tight limit; the truncated result must be a
	// valid lower bound (here: any value at or below 54).
	tb := conflict.NewTable()
	var path topology.Path
	for i := topology.LinkID(0); i < 12; i++ {
		tb.SetRates(i, 54)
		path = append(path, i)
	}
	res, truncated, err = AvailableBandwidthLowerBound(tb, nil, path, Options{SetLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("expected truncation under SetLimit 50")
	}
	exact := 54.0 // all 12 links compatible: each carries a full 54
	if res.Status == lp.Optimal && res.Bandwidth > exact+eps {
		t.Errorf("truncated bound %.4f exceeds the true value %.4f", res.Bandwidth, exact)
	}
}
