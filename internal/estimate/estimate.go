// Package estimate implements the paper's distributed path
// available-bandwidth estimators (Sec. 4): metrics a node can compute
// from carrier-sensed channel idleness and local clique structure,
// without global scheduling knowledge. Five estimators are provided,
// matching Fig. 4 of the evaluation:
//
//   - clique constraint (Eq. 11) — interference along the path only,
//     background ignored;
//   - bottleneck node bandwidth (Eq. 10) — background only, path
//     interference ignored;
//   - min of the two (Eq. 12);
//   - conservative clique constraint (Eq. 13) — the paper's proposal and
//     best performer;
//   - expected clique transmission time (Eq. 15).
package estimate

import (
	"fmt"
	"math"

	"abw/internal/clique"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// PathState is what a distributed estimator knows about a candidate
// path: its links, the effective data rate of each hop, and each hop's
// carrier-sensed idle ratio (the lambda_i of Eq. 10, already reduced to
// the smaller of the two endpoints' idleness).
type PathState struct {
	Path  []topology.LinkID
	Rates []radio.Rate
	Idle  []float64
}

// Validate reports an error unless the state is internally consistent.
func (ps PathState) Validate() error {
	if len(ps.Path) == 0 {
		return fmt.Errorf("estimate: empty path")
	}
	if len(ps.Rates) != len(ps.Path) || len(ps.Idle) != len(ps.Path) {
		return fmt.Errorf("estimate: path has %d links but %d rates and %d idle ratios",
			len(ps.Path), len(ps.Rates), len(ps.Idle))
	}
	for i, r := range ps.Rates {
		if r <= 0 {
			return fmt.Errorf("estimate: hop %d has non-positive rate %v", i, r)
		}
	}
	for i, l := range ps.Idle {
		if l < 0 || l > 1+1e-9 || math.IsNaN(l) {
			return fmt.Errorf("estimate: hop %d has idle ratio %g outside [0,1]", i, l)
		}
	}
	return nil
}

// Metric identifies one of the paper's estimators.
type Metric int

// The five estimators of Fig. 4.
const (
	// MetricCliqueConstraint is Eq. 11.
	MetricCliqueConstraint Metric = iota + 1
	// MetricBottleneckNode is Eq. 10.
	MetricBottleneckNode
	// MetricMinOfBoth is Eq. 12.
	MetricMinOfBoth
	// MetricConservativeClique is Eq. 13.
	MetricConservativeClique
	// MetricExpectedCliqueTime is Eq. 15.
	MetricExpectedCliqueTime
)

// String implements fmt.Stringer with the paper's Fig. 4 labels.
func (m Metric) String() string {
	switch m {
	case MetricCliqueConstraint:
		return "clique constraint"
	case MetricBottleneckNode:
		return "bottleneck node bandwidth"
	case MetricMinOfBoth:
		return "min of clique and bottleneck"
	case MetricConservativeClique:
		return "conservative clique constraint"
	case MetricExpectedCliqueTime:
		return "expected clique transmission time"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// AllMetrics returns the five estimators in the paper's Fig. 4 order.
func AllMetrics() []Metric {
	return []Metric{
		MetricCliqueConstraint,
		MetricBottleneckNode,
		MetricMinOfBoth,
		MetricConservativeClique,
		MetricExpectedCliqueTime,
	}
}

// Estimate dispatches to the named estimator.
func Estimate(metric Metric, m conflict.Model, ps PathState) (float64, error) {
	switch metric {
	case MetricCliqueConstraint:
		return CliqueConstraint(m, ps)
	case MetricBottleneckNode:
		return BottleneckNode(ps)
	case MetricMinOfBoth:
		return MinCliqueBottleneck(m, ps)
	case MetricConservativeClique:
		return ConservativeClique(m, ps)
	case MetricExpectedCliqueTime:
		return ExpectedCliqueTime(m, ps)
	default:
		return 0, fmt.Errorf("estimate: unknown metric %d", int(metric))
	}
}

// BottleneckNode is Eq. 10: the path supports at most the tightest
// idle-time budget of any hop, f <= min_i lambda_i * r_i. It considers
// background load but ignores interference among the path's own hops.
func BottleneckNode(ps PathState) (float64, error) {
	if err := ps.Validate(); err != nil {
		return 0, err
	}
	f := math.Inf(1)
	for i := range ps.Path {
		if v := ps.Idle[i] * float64(ps.Rates[i]); v < f {
			f = v
		}
	}
	return f, nil
}

// CliqueConstraint is Eq. 11: for every local interference clique C of
// the path, f <= 1 / sum_{i in C} 1/r_i. It accounts for intra-path
// interference but ignores background traffic entirely.
func CliqueConstraint(m conflict.Model, ps PathState) (float64, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return 0, err
	}
	f := math.Inf(1)
	for _, c := range cliques {
		if t := c.UnitTransmissionTime(); t > 0 {
			if v := 1 / t; v < f {
				f = v
			}
		}
	}
	return f, nil
}

// MinCliqueBottleneck is Eq. 12: within every local clique, f is capped
// both by the clique transmission budget and by each member's idle-time
// budget; the tightest cap over all cliques wins.
func MinCliqueBottleneck(m conflict.Model, ps PathState) (float64, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return 0, err
	}
	idx := indexOf(ps)
	f := math.Inf(1)
	for _, c := range cliques {
		if t := c.UnitTransmissionTime(); t > 0 {
			if v := 1 / t; v < f {
				f = v
			}
		}
		for _, cp := range c.Couples {
			i := idx[cp.Link]
			if v := ps.Idle[i] * float64(ps.Rates[i]); v < f {
				f = v
			}
		}
	}
	return f, nil
}

// ConservativeClique is Eq. 13, the paper's proposed estimator: assume
// the idle time of a hop must be shared by every clique member with less
// idle time. Ordering each clique's idle ratios ascending
// (lambda_1 <= ... <= lambda_|C|),
//
//	f <= min_i lambda_i / sum_{j<=i} 1/r_j.
func ConservativeClique(m conflict.Model, ps PathState) (float64, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return 0, err
	}
	idx := indexOf(ps)
	f := math.Inf(1)
	for _, c := range cliques {
		if v := conservativeCliqueValue(c, idx, ps); v < f {
			f = v
		}
	}
	return f, nil
}

// ExpectedCliqueTime is Eq. 15: f <= 1 / max_C sum_{i in C}
// 1/(lambda_i r_i) — the clique transmission time computed with
// idleness-discounted link bandwidths. A zero idle ratio anywhere in a
// clique forces the estimate to zero.
func ExpectedCliqueTime(m conflict.Model, ps PathState) (float64, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return 0, err
	}
	idx := indexOf(ps)
	maxT := 0.0
	for _, c := range cliques {
		t := 0.0
		for _, cp := range c.Couples {
			i := idx[cp.Link]
			eff := ps.Idle[i] * float64(ps.Rates[i])
			if eff <= 0 {
				return 0, nil
			}
			t += 1 / eff
		}
		if t > maxT {
			maxT = t
		}
	}
	if maxT == 0 {
		return math.Inf(1), nil
	}
	return 1 / maxT, nil
}

// EstimateAll evaluates every metric on the same state.
func EstimateAll(m conflict.Model, ps PathState) (map[Metric]float64, error) {
	out := make(map[Metric]float64, 5)
	for _, metric := range AllMetrics() {
		v, err := Estimate(metric, m, ps)
		if err != nil {
			return nil, err
		}
		out[metric] = v
	}
	return out, nil
}

func localCliques(m conflict.Model, ps PathState) ([]clique.Clique, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	cliques, err := clique.LocalCliques(m, ps.Path, ps.Rates)
	if err != nil {
		return nil, fmt.Errorf("estimate: finding local cliques: %w", err)
	}
	return cliques, nil
}

// indexOf maps each path link to its hop index. Paths visiting a link
// twice keep the last index; estimator inputs are loopless in practice.
func indexOf(ps PathState) map[topology.LinkID]int {
	idx := make(map[topology.LinkID]int, len(ps.Path))
	for i, l := range ps.Path {
		idx[l] = i
	}
	return idx
}
