package estimate

import (
	"math"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/schedule"
	"abw/internal/topology"
)

const eps = 1e-9

// backgroundScheduleI is Scenario I's measured world: L1 and L2 each
// busy for share lambda in separate slots (their shares "do not overlap
// with each other" before the new flow arrives).
func backgroundScheduleI(s *scenario.ScenarioI, lambda float64) schedule.Schedule {
	return schedule.Schedule{Slots: []schedule.Slot{
		{Share: lambda, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: s.Rate})},
		{Share: lambda, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: s.Rate})},
	}}
}

// TestScenarioIIdleTimeUnderestimates reproduces the introduction's
// motivating example: carrier-sensed idleness at L3 is 1-2*lambda, so
// idle-time-based admission allows only (1-2*lambda)*r even though the
// true available bandwidth is (1-lambda)*r.
func TestScenarioIIdleTimeUnderestimates(t *testing.T) {
	const lambda = 0.3
	s := scenario.NewScenarioI(54)
	sched := backgroundScheduleI(s, lambda)

	idle := LinkIdleFromSchedule(s.Model, sched, s.L3, 54)
	if math.Abs(idle-(1-2*lambda)) > eps {
		t.Fatalf("idle(L3) = %.4f, want %.4f", idle, 1-2*lambda)
	}
	ps := PathState{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}, Idle: []float64{idle}}

	bn, err := BottleneckNode(ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bn-(1-2*lambda)*54) > eps {
		t.Errorf("bottleneck estimate = %.4f, want (1-2lambda)*54 = %.4f", bn, (1-2*lambda)*54)
	}
	// The idle-time estimate is strictly below the true optimum
	// (1-lambda)*54 = 37.8 computed by the exact model.
	if bn >= (1-lambda)*54 {
		t.Errorf("idle-time estimate %.4f should underestimate the true %.4f", bn, (1-lambda)*54)
	}
	// L1 and L2 do not hear each other: their idleness only discounts
	// their own slots.
	if got := LinkIdleFromSchedule(s.Model, sched, s.L1, 54); math.Abs(got-(1-lambda)) > eps {
		t.Errorf("idle(L1) = %.4f, want %.4f", got, 1-lambda)
	}
}

// TestScenarioIICliqueConstraintLightLoad reproduces the Fig. 4
// light-load observation: with no background traffic the clique
// constraint (Eq. 11) under-estimates the true multirate bandwidth
// because it cannot exploit link adaptation.
func TestScenarioIICliqueConstraintLightLoad(t *testing.T) {
	s := scenario.NewScenarioII()
	ps := PathState{
		Path:  s.Path,
		Rates: []radio.Rate{54, 54, 54, 54}, // alone max rates
		Idle:  []float64{1, 1, 1, 1},
	}
	cc, err := CliqueConstraint(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Local clique at all-54 covers the whole chain: bound = 54/4 = 13.5,
	// strictly below the exact 16.2.
	if math.Abs(cc-13.5) > eps {
		t.Errorf("clique constraint = %.4f, want 13.5", cc)
	}
	if cc >= 16.2 {
		t.Error("clique constraint should underestimate the multirate optimum at light load")
	}
	// With the paper's R2 rates, the tightest local clique is
	// {L1@36,L2@54,L3@54}: 108/7.
	psR2 := PathState{Path: s.Path, Rates: []radio.Rate{36, 54, 54, 54}, Idle: []float64{1, 1, 1, 1}}
	cc2, err := CliqueConstraint(s.Model, psR2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cc2-108.0/7) > eps {
		t.Errorf("clique constraint @R2 = %.4f, want 108/7 = %.4f", cc2, 108.0/7)
	}
}

func TestConservativeCliqueSingleHop(t *testing.T) {
	s := scenario.NewScenarioI(54)
	ps := PathState{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}, Idle: []float64{0.4}}
	got, err := ConservativeClique(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.4*54) > eps {
		t.Errorf("conservative clique = %.4f, want 21.6", got)
	}
}

func TestConservativeCliqueOrdering(t *testing.T) {
	// Hand-computed Eq. 13 on a 3-link full clique with distinct idle
	// ratios: rates (54,36,18), idle (0.2,0.5,1.0) sorted ascending.
	// prefix sums of 1/r in idle order: 1/54; 1/54+1/36; +1/18.
	tb := conflict.NewTable()
	for l := topology.LinkID(0); l < 3; l++ {
		tb.SetRates(l, 54, 36, 18)
	}
	for i := topology.LinkID(0); i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if err := tb.AddConflictAllRates(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	ps := PathState{
		Path:  []topology.LinkID{0, 1, 2},
		Rates: []radio.Rate{54, 36, 18},
		Idle:  []float64{0.2, 0.5, 1.0},
	}
	want := math.Min(0.2/(1.0/54), math.Min(0.5/(1.0/54+1.0/36), 1.0/(1.0/54+1.0/36+1.0/18)))
	got, err := ConservativeClique(tb, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > eps {
		t.Errorf("conservative clique = %.6f, want %.6f", got, want)
	}
}

func TestExpectedCliqueTime(t *testing.T) {
	s := scenario.NewScenarioII()
	ps := PathState{Path: s.Path, Rates: []radio.Rate{54, 54, 54, 54}, Idle: []float64{0.5, 1, 1, 0.5}}
	// Single local clique of all four: T = 1/(0.5*54) + 1/54 + 1/54 + 1/(0.5*54).
	wantT := 2/(0.5*54) + 2.0/54
	got, err := ExpectedCliqueTime(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1/wantT) > eps {
		t.Errorf("ECTT = %.6f, want %.6f", got, 1/wantT)
	}
	// Zero idleness anywhere forces the estimate to zero.
	psZero := PathState{Path: s.Path, Rates: []radio.Rate{54, 54, 54, 54}, Idle: []float64{0, 1, 1, 1}}
	got, err = ExpectedCliqueTime(s.Model, psZero)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("ECTT with zero idle = %.6f, want 0", got)
	}
}

func TestMinOfBothEqualsMin(t *testing.T) {
	s := scenario.NewScenarioII()
	ps := PathState{Path: s.Path, Rates: []radio.Rate{54, 54, 54, 54}, Idle: []float64{0.3, 0.8, 1, 0.9}}
	cc, err := CliqueConstraint(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := BottleneckNode(ps)
	if err != nil {
		t.Fatal(err)
	}
	both, err := MinCliqueBottleneck(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(both-math.Min(cc, bn)) > eps {
		t.Errorf("min-of-both = %.6f, want min(%.6f, %.6f)", both, cc, bn)
	}
}

// TestEstimatorOrderInvariants checks the provable dominance chain on
// random inputs: ECTT <= conservative <= min-of-both <= both Eq.10 and
// Eq.11.
func TestEstimatorOrderInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rates := []radio.Rate{54, 36, 18, 6}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		tb := conflict.NewTable()
		var path []topology.LinkID
		var psRates []radio.Rate
		var idle []float64
		for i := topology.LinkID(0); int(i) < n; i++ {
			tb.SetRates(i, rates...)
			path = append(path, i)
			psRates = append(psRates, rates[rng.Intn(len(rates))])
			idle = append(idle, 0.05+0.95*rng.Float64())
		}
		// Random conflicts between consecutive-ish links (rate-blind to
		// keep local cliques meaningful).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if j == i+1 || rng.Float64() < 0.5 {
					if err := tb.AddConflictAllRates(topology.LinkID(i), topology.LinkID(j)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		ps := PathState{Path: path, Rates: psRates, Idle: idle}
		all, err := EstimateAll(tb, ps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ectt := all[MetricExpectedCliqueTime]
		cons := all[MetricConservativeClique]
		both := all[MetricMinOfBoth]
		cc := all[MetricCliqueConstraint]
		bn := all[MetricBottleneckNode]
		if ectt > cons+eps {
			t.Errorf("trial %d: ECTT %.6f > conservative %.6f", trial, ectt, cons)
		}
		if cons > both+eps {
			t.Errorf("trial %d: conservative %.6f > min-of-both %.6f", trial, cons, both)
		}
		if both > cc+eps || both > bn+eps {
			t.Errorf("trial %d: min-of-both %.6f exceeds clique %.6f or bottleneck %.6f", trial, both, cc, bn)
		}
	}
}

func TestValidation(t *testing.T) {
	s := scenario.NewScenarioI(54)
	bad := []PathState{
		{},
		{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}},
		{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{0}, Idle: []float64{1}},
		{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}, Idle: []float64{-0.1}},
		{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}, Idle: []float64{1.5}},
	}
	for i, ps := range bad {
		if err := ps.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := BottleneckNode(ps); err == nil {
			t.Errorf("case %d: BottleneckNode should reject invalid state", i)
		}
	}
	good := PathState{Path: []topology.LinkID{s.L3}, Rates: []radio.Rate{54}, Idle: []float64{1}}
	if _, err := Estimate(Metric(0), s.Model, good); err == nil {
		t.Error("unknown metric: expected error")
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range AllMetrics() {
		if s := m.String(); s == "" || s[0] == 'M' {
			t.Errorf("metric %d has bad label %q", int(m), s)
		}
	}
	if Metric(99).String() != "Metric(99)" {
		t.Error("unknown metric label wrong")
	}
}

func TestExplainBindings(t *testing.T) {
	s := scenario.NewScenarioII()
	ps := PathState{
		Path:  s.Path,
		Rates: []radio.Rate{36, 54, 54, 54},
		Idle:  []float64{1, 1, 1, 0.1},
	}
	// Clique constraint: binding clique is {L1@36,L2,L3} (108/7 < 18).
	exp, err := Explain(MetricCliqueConstraint, s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Value-108.0/7) > eps {
		t.Errorf("clique value = %.4f, want 108/7", exp.Value)
	}
	if exp.BindingClique.Key() != "0@36|1@54|2@54" {
		t.Errorf("binding clique = %v", exp.BindingClique)
	}
	if exp.BindingHop != -1 {
		t.Errorf("binding hop = %d, want -1", exp.BindingHop)
	}
	// Bottleneck: hop 3 (idle 0.1) binds.
	exp, err = Explain(MetricBottleneckNode, s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if exp.BindingHop != 3 {
		t.Errorf("bottleneck binding hop = %d, want 3", exp.BindingHop)
	}
	if math.Abs(exp.Value-0.1*54) > eps {
		t.Errorf("bottleneck value = %.4f, want 5.4", exp.Value)
	}
	// Conservative: value must equal the plain estimator, with some
	// binding clique attached.
	exp, err = Explain(MetricConservativeClique, s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ConservativeClique(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Value-direct) > eps {
		t.Errorf("conservative explain %.4f != direct %.4f", exp.Value, direct)
	}
	if exp.BindingClique.Len() == 0 {
		t.Error("conservative explanation missing its binding clique")
	}
	// Unsupported metrics fall back to the bare value.
	exp, err = Explain(MetricExpectedCliqueTime, s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	directE, err := ExpectedCliqueTime(s.Model, ps)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Value != directE || exp.BindingClique.Len() != 0 {
		t.Errorf("fallback explanation wrong: %+v", exp)
	}
}

func TestExplainMatchesEstimateEverywhere(t *testing.T) {
	s := scenario.NewScenarioII()
	ps := PathState{
		Path:  s.Path,
		Rates: []radio.Rate{54, 54, 54, 54},
		Idle:  []float64{0.4, 0.9, 1, 0.7},
	}
	for _, metric := range AllMetrics() {
		exp, err := Explain(metric, s.Model, ps)
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		direct, err := Estimate(metric, s.Model, ps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exp.Value-direct) > eps {
			t.Errorf("%v: explain %.6f != estimate %.6f", metric, exp.Value, direct)
		}
	}
}
