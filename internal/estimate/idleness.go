package estimate

import (
	"fmt"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// NodeIdleRatios computes the carrier-sensed idle ratio of every node
// under the given background schedule (Sec. 4): a node senses the
// channel busy during a slot iff it takes part in one of the slot's
// transmissions or some slot transmitter lies within its carrier-sense
// range; the unscheduled remainder of the period is idle for everyone.
func NodeIdleRatios(net *topology.Network, sched schedule.Schedule) []float64 {
	prof := net.Profile()
	nodes := net.Nodes()
	idle := make([]float64, len(nodes))
	for i := range idle {
		idle[i] = sched.IdleShare()
	}
	for _, slot := range sched.Slots {
		if slot.Share <= 0 || slot.Set.Len() == 0 {
			// An empty slot leaves the channel idle for its duration.
			for i := range idle {
				idle[i] += slot.Share
			}
			continue
		}
		for i, n := range nodes {
			busy := false
			for _, cp := range slot.Set.Couples {
				link, err := net.Link(cp.Link)
				if err != nil {
					continue
				}
				if link.Tx == n.ID || link.Rx == n.ID {
					busy = true
					break
				}
				tx, err := net.Node(link.Tx)
				if err != nil {
					continue
				}
				if prof.Senses(tx.Pos.Dist(n.Pos)) {
					busy = true
					break
				}
			}
			if !busy {
				idle[i] += slot.Share
			}
		}
	}
	return idle
}

// LinkIdleRatios reduces node idleness to per-hop link idleness for a
// path: lambda_i is the smaller idle ratio of the hop's two endpoints
// (Eq. 10).
func LinkIdleRatios(net *topology.Network, nodeIdle []float64, path topology.Path) ([]float64, error) {
	out := make([]float64, 0, len(path))
	for _, lid := range path {
		link, err := net.Link(lid)
		if err != nil {
			return nil, fmt.Errorf("estimate: %w", err)
		}
		if int(link.Tx) >= len(nodeIdle) || int(link.Rx) >= len(nodeIdle) {
			return nil, fmt.Errorf("estimate: node idleness vector too short for link %d", lid)
		}
		tx, rx := nodeIdle[link.Tx], nodeIdle[link.Rx]
		if rx < tx {
			out = append(out, rx)
		} else {
			out = append(out, tx)
		}
	}
	return out, nil
}

// LinkIdleFromSchedule computes a link's idle ratio under a conflict
// model with no geometry: the link senses a slot busy iff the slot
// contains it or contains a couple that interferes with it at the given
// rate. This is the sensing proxy used for the table-model scenarios.
func LinkIdleFromSchedule(m conflict.Model, sched schedule.Schedule, link topology.LinkID, rate radio.Rate) float64 {
	idle := sched.IdleShare()
	self := conflict.Couple{Link: link, Rate: rate}
	for _, slot := range sched.Slots {
		if slot.Share <= 0 {
			continue
		}
		busy := false
		for _, cp := range slot.Set.Couples {
			if cp.Link == link || conflict.Interferes(m, cp, self) {
				busy = true
				break
			}
		}
		if !busy {
			idle += slot.Share
		}
	}
	return idle
}

// PathStateFromSchedule assembles the distributed estimator input for a
// path over a geometric network: per-hop effective rates are the
// links' alone maximum rates, and idleness comes from carrier sensing
// the background schedule.
func PathStateFromSchedule(net *topology.Network, m conflict.Model, sched schedule.Schedule, path topology.Path) (PathState, error) {
	if len(path) == 0 {
		return PathState{}, fmt.Errorf("estimate: empty path")
	}
	nodeIdle := NodeIdleRatios(net, sched)
	idle, err := LinkIdleRatios(net, nodeIdle, path)
	if err != nil {
		return PathState{}, err
	}
	rates := make([]radio.Rate, 0, len(path))
	for _, lid := range path {
		r := conflict.AloneMaxRate(m, lid)
		if r <= 0 {
			return PathState{}, fmt.Errorf("estimate: link %d supports no rate", lid)
		}
		rates = append(rates, r)
	}
	ps := PathState{Path: path, Rates: rates, Idle: idle}
	if err := ps.Validate(); err != nil {
		return PathState{}, err
	}
	return ps, nil
}
