package estimate

import (
	"math"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/schedule"
	"abw/internal/topology"
)

// idlenessFixture is a 4-hop, 100m-spaced chain (every node within the
// 237m default carrier-sense range of every transmitter).
func idlenessFixture(t *testing.T) (*topology.Network, topology.Path, *conflict.Physical) {
	t.Helper()
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	return net, path, conflict.NewPhysical(net)
}

func TestNodeIdleRatiosEmptySchedule(t *testing.T) {
	net, _, _ := idlenessFixture(t)
	idle := NodeIdleRatios(net, schedule.Schedule{})
	for i, v := range idle {
		if v != 1 {
			t.Errorf("node %d idle = %g, want 1 with no traffic", i, v)
		}
	}
}

func TestNodeIdleRatiosSingleSlot(t *testing.T) {
	net, path, _ := idlenessFixture(t)
	sched := schedule.Schedule{Slots: []schedule.Slot{
		{Share: 0.4, Set: indepset.NewSet(conflict.Couple{Link: path[0], Rate: 18})},
	}}
	idle := NodeIdleRatios(net, sched)
	// All 5 nodes are within 237m CS range of node 0 (max distance 400m
	// for node 4 — outside!). Node 4 at 400m does not hear node 0.
	for i := 0; i <= 2; i++ {
		if math.Abs(idle[i]-0.6) > 1e-12 {
			t.Errorf("node %d idle = %g, want 0.6", i, idle[i])
		}
	}
	if math.Abs(idle[4]-1.0) > 1e-12 {
		t.Errorf("node 4 (400m from tx) idle = %g, want 1.0", idle[4])
	}
}

func TestNodeIdleRatiosEmptySlotStaysIdle(t *testing.T) {
	net, _, _ := idlenessFixture(t)
	sched := schedule.Schedule{Slots: []schedule.Slot{{Share: 0.5, Set: indepset.NewSet()}}}
	idle := NodeIdleRatios(net, sched)
	for i, v := range idle {
		if v != 1 {
			t.Errorf("node %d idle = %g, want 1 (empty slot is idle air)", i, v)
		}
	}
}

func TestLinkIdleRatiosTakeMin(t *testing.T) {
	net, path, _ := idlenessFixture(t)
	nodeIdle := []float64{0.9, 0.2, 0.7, 0.8, 0.6}
	idle, err := LinkIdleRatios(net, nodeIdle, path)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.2, 0.7, 0.6}
	for i := range want {
		if math.Abs(idle[i]-want[i]) > 1e-12 {
			t.Errorf("hop %d idle = %g, want %g", i, idle[i], want[i])
		}
	}
	if _, err := LinkIdleRatios(net, []float64{1}, path); err == nil {
		t.Error("short idleness vector: expected error")
	}
	if _, err := LinkIdleRatios(net, nodeIdle, topology.Path{topology.LinkID(999)}); err == nil {
		t.Error("bogus link: expected error")
	}
}

func TestPathStateFromSchedule(t *testing.T) {
	net, path, m := idlenessFixture(t)
	sched := schedule.Schedule{Slots: []schedule.Slot{
		{Share: 0.25, Set: indepset.NewSet(conflict.Couple{Link: path[0], Rate: 18})},
	}}
	ps, err := PathStateFromSchedule(net, m, sched, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rates) != 4 {
		t.Fatalf("rates = %v", ps.Rates)
	}
	for i, r := range ps.Rates {
		if r != 18 { // 100m hops support 18 Mbps alone
			t.Errorf("hop %d rate = %v, want 18", i, r)
		}
	}
	for i, l := range ps.Idle {
		if l < 0 || l > 1 {
			t.Errorf("hop %d idle = %g outside [0,1]", i, l)
		}
	}
	// Hops near the transmitter are busier.
	if ps.Idle[0] > ps.Idle[3] {
		t.Errorf("idle[0]=%g should be <= idle[3]=%g (hop 0 is at the transmitter)", ps.Idle[0], ps.Idle[3])
	}
	if _, err := PathStateFromSchedule(net, m, sched, nil); err == nil {
		t.Error("empty path: expected error")
	}
}

func TestLinkIdleFromScheduleOwnSlotBusy(t *testing.T) {
	tb := conflict.NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	// No conflicts between 0 and 1.
	sched := schedule.Schedule{Slots: []schedule.Slot{
		{Share: 0.3, Set: indepset.NewSet(conflict.Couple{Link: 0, Rate: 54})},
		{Share: 0.2, Set: indepset.NewSet(conflict.Couple{Link: 1, Rate: 54})},
	}}
	// Link 0 is busy only during its own slot.
	if got := LinkIdleFromSchedule(tb, sched, 0, 54); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("idle(link 0) = %g, want 0.7", got)
	}
	// A third link with no conflicts is idle except nothing: 1.0 minus
	// nothing it hears — both slots invisible.
	tb.SetRates(2, 54)
	if got := LinkIdleFromSchedule(tb, sched, 2, 54); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("idle(link 2) = %g, want 1.0", got)
	}
}
