package estimate

import (
	"math"
	"sort"

	"abw/internal/clique"
	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Explanation reports why an estimator returned its value: the binding
// local clique (empty for estimators bound by a single hop) and the
// binding hop index (-1 when a whole clique binds).
type Explanation struct {
	// Value is the estimate itself.
	Value float64
	// BindingClique is the local interference clique that produced the
	// minimum, when one did.
	BindingClique clique.Clique
	// BindingHop is the hop index whose idle-time budget bound the
	// estimate, or -1.
	BindingHop int
}

// Explain computes an estimator together with its binding constraint —
// the diagnosis a network operator needs to know WHERE a path's
// bandwidth is lost. Supported for the clique constraint (binding
// clique), bottleneck node (binding hop), and conservative clique
// (binding clique); other metrics return only the value.
func Explain(metric Metric, m conflict.Model, ps PathState) (Explanation, error) {
	switch metric {
	case MetricCliqueConstraint:
		return explainCliqueConstraint(m, ps)
	case MetricBottleneckNode:
		return explainBottleneck(ps)
	case MetricConservativeClique:
		return explainConservative(m, ps)
	default:
		v, err := Estimate(metric, m, ps)
		if err != nil {
			return Explanation{}, err
		}
		return Explanation{Value: v, BindingHop: -1}, nil
	}
}

func explainCliqueConstraint(m conflict.Model, ps PathState) (Explanation, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return Explanation{}, err
	}
	out := Explanation{Value: math.Inf(1), BindingHop: -1}
	for _, c := range cliques {
		t := c.UnitTransmissionTime()
		if t <= 0 {
			continue
		}
		if v := 1 / t; v < out.Value {
			out.Value = v
			out.BindingClique = c
		}
	}
	return out, nil
}

func explainBottleneck(ps PathState) (Explanation, error) {
	if err := ps.Validate(); err != nil {
		return Explanation{}, err
	}
	out := Explanation{Value: math.Inf(1), BindingHop: -1}
	for i := range ps.Path {
		if v := ps.Idle[i] * float64(ps.Rates[i]); v < out.Value {
			out.Value = v
			out.BindingHop = i
		}
	}
	return out, nil
}

func explainConservative(m conflict.Model, ps PathState) (Explanation, error) {
	cliques, err := localCliques(m, ps)
	if err != nil {
		return Explanation{}, err
	}
	idx := indexOf(ps)
	out := Explanation{Value: math.Inf(1), BindingHop: -1}
	for _, c := range cliques {
		if v := conservativeCliqueValue(c, idx, ps); v < out.Value {
			out.Value = v
			out.BindingClique = c
		}
	}
	return out, nil
}

// conservativeCliqueValue evaluates Eq. 13 on one clique: idle ratios
// sorted ascending, f <= min_i lambda_i / sum_{j<=i} 1/r_j.
func conservativeCliqueValue(c clique.Clique, idx map[topology.LinkID]int, ps PathState) float64 {
	type hop struct {
		idle float64
		rate radio.Rate
	}
	hops := make([]hop, 0, c.Len())
	for _, cp := range c.Couples {
		i := idx[cp.Link]
		hops = append(hops, hop{idle: ps.Idle[i], rate: ps.Rates[i]})
	}
	sort.Slice(hops, func(a, b int) bool { return hops[a].idle < hops[b].idle })
	prefix := 0.0
	best := math.Inf(1)
	for _, h := range hops {
		prefix += 1 / float64(h.rate)
		if v := h.idle / prefix; v < best {
			best = v
		}
	}
	return best
}
