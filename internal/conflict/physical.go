package conflict

import (
	"abw/internal/radio"
	"abw/internal/topology"
)

// Physical is the cumulative-interference SINR model of paper Eq. 1/3:
// a link in a concurrent set supports the highest rate whose receiver
// sensitivity is met and whose SINR requirement survives the *sum* of
// interference powers from every other transmitter in the set, plus the
// noise floor. It also enforces half-duplex node exclusivity.
//
// Because transmit powers are fixed, the interference sum depends only on
// which links transmit — not on their rates — so the maximum supported
// rate vector of a set is unique (paper Sec. 2.3).
type Physical struct {
	net *topology.Network
	// interf[k][j] is the interference power at link j's receiver caused
	// by link k's transmitter.
	interf [][]float64
	// signal[j] is the received signal power at link j's receiver.
	signal []float64
}

var _ Model = (*Physical)(nil)

// NewPhysical builds a Physical model over the given network,
// precomputing all pairwise interference powers.
func NewPhysical(net *topology.Network) *Physical {
	nl := net.NumLinks()
	p := &Physical{
		net:    net,
		interf: make([][]float64, nl),
		signal: make([]float64, nl),
	}
	prof := net.Profile()
	links := net.Links()
	for j, lj := range links {
		p.signal[j] = prof.RxPower(lj.Dist)
	}
	for k, lk := range links {
		p.interf[k] = make([]float64, nl)
		for j, lj := range links {
			if k == j {
				continue
			}
			d := mustNodeDist(net, lk.Tx, lj.Rx)
			p.interf[k][j] = prof.RxPower(d)
		}
	}
	return p
}

func mustNodeDist(net *topology.Network, a, b topology.NodeID) float64 {
	d, err := net.NodeDist(a, b)
	if err != nil {
		// Nodes come from the network's own links; failure means the
		// network is internally inconsistent.
		panic(err)
	}
	return d
}

// Network returns the underlying network.
func (p *Physical) Network() *topology.Network { return p.net }

// SignalPower returns the received signal power at link's receiver.
func (p *Physical) SignalPower(link topology.LinkID) float64 {
	if link < 0 || int(link) >= len(p.signal) {
		return 0
	}
	return p.signal[link]
}

// InterferencePower returns the interference power that link from's
// transmitter deposits at link at's receiver.
func (p *Physical) InterferencePower(from, at topology.LinkID) float64 {
	if from < 0 || int(from) >= len(p.interf) || at < 0 || int(at) >= len(p.interf) || from == at {
		return 0
	}
	return p.interf[from][at]
}

// MaxRate implements Model.
func (p *Physical) MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate {
	if int(link) >= len(p.signal) || link < 0 {
		return 0
	}
	self, err := p.net.Link(link)
	if err != nil {
		return 0
	}
	total := 0.0
	for _, c := range concurrent {
		if c.Link == link {
			continue
		}
		other, err := p.net.Link(c.Link)
		if err != nil {
			return 0
		}
		if SharesNode(self, other) {
			return 0
		}
		total += p.interf[c.Link][link]
	}
	r, ok := p.net.Profile().MaxRate(p.signal[link], total)
	if !ok {
		return 0
	}
	return r
}

// Rates implements Model: the rates the link supports alone are every
// profile rate at or below its distance-limited maximum.
func (p *Physical) Rates(link topology.LinkID) []radio.Rate {
	l, err := p.net.Link(link)
	if err != nil {
		return nil
	}
	var out []radio.Rate
	for _, r := range p.net.Profile().Rates() {
		if r <= l.MaxRate {
			out = append(out, r)
		}
	}
	return out
}

// MaxRateVector returns the maximum supported rate vector of a concurrent
// transmission set (paper Sec. 2.3): the i-th entry is the highest rate
// links[i] sustains while all the other listed links transmit. The
// second return is false if any link in the set cannot transmit at all
// (the set is not an independent set).
func (p *Physical) MaxRateVector(links []topology.LinkID) ([]radio.Rate, bool) {
	couples := make([]Couple, 0, len(links))
	for _, id := range links {
		// Rates are irrelevant to Physical interference; use 0 markers.
		couples = append(couples, Couple{Link: id})
	}
	rates := make([]radio.Rate, len(links))
	ok := true
	for i, id := range links {
		others := make([]Couple, 0, len(couples)-1)
		for j, c := range couples {
			if j != i {
				others = append(others, c)
			}
		}
		rates[i] = p.MaxRate(id, others)
		if rates[i] == 0 {
			ok = false
		}
	}
	return rates, ok
}
