package conflict

import (
	"abw/internal/radio"
	"abw/internal/topology"
)

// Physical is the cumulative-interference SINR model of paper Eq. 1/3:
// a link in a concurrent set supports the highest rate whose receiver
// sensitivity is met and whose SINR requirement survives the *sum* of
// interference powers from every other transmitter in the set, plus the
// noise floor. It also enforces half-duplex node exclusivity.
//
// Because transmit powers are fixed, the interference sum depends only on
// which links transmit — not on their rates — so the maximum supported
// rate vector of a set is unique (paper Sec. 2.3).
type Physical struct {
	net *topology.Network
	// interf[k][j] is the interference power at link j's receiver caused
	// by link k's transmitter.
	interf [][]float64
	// signal[j] is the received signal power at link j's receiver.
	signal []float64
	// fp memoizes the canonical content fingerprint (fingerprint.go).
	fp fpMemo
}

var _ Model = (*Physical)(nil)

// NewPhysical builds a Physical model over the given network,
// precomputing all pairwise interference powers.
func NewPhysical(net *topology.Network) *Physical {
	nl := net.NumLinks()
	p := &Physical{
		net:    net,
		interf: make([][]float64, nl),
		signal: make([]float64, nl),
	}
	prof := net.Profile()
	links := net.Links()
	for j, lj := range links {
		p.signal[j] = prof.RxPower(lj.Dist)
	}
	for k, lk := range links {
		p.interf[k] = make([]float64, nl)
		for j, lj := range links {
			if k == j {
				continue
			}
			d := mustNodeDist(net, lk.Tx, lj.Rx)
			p.interf[k][j] = prof.RxPower(d)
		}
	}
	return p
}

func mustNodeDist(net *topology.Network, a, b topology.NodeID) float64 {
	d, err := net.NodeDist(a, b)
	if err != nil {
		// Nodes come from the network's own links; failure means the
		// network is internally inconsistent.
		panic(err)
	}
	return d
}

// Network returns the underlying network.
func (p *Physical) Network() *topology.Network { return p.net }

// SignalPower returns the received signal power at link's receiver.
func (p *Physical) SignalPower(link topology.LinkID) float64 {
	if link < 0 || int(link) >= len(p.signal) {
		return 0
	}
	return p.signal[link]
}

// InterferencePower returns the interference power that link from's
// transmitter deposits at link at's receiver.
func (p *Physical) InterferencePower(from, at topology.LinkID) float64 {
	if from < 0 || int(from) >= len(p.interf) || at < 0 || int(at) >= len(p.interf) || from == at {
		return 0
	}
	return p.interf[from][at]
}

// MaxRate implements Model.
func (p *Physical) MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate {
	if int(link) >= len(p.signal) || link < 0 {
		return 0
	}
	self, err := p.net.Link(link)
	if err != nil {
		return 0
	}
	total := 0.0
	for _, c := range concurrent {
		if c.Link == link {
			continue
		}
		other, err := p.net.Link(c.Link)
		if err != nil {
			return 0
		}
		if SharesNode(self, other) {
			return 0
		}
		total += p.interf[c.Link][link]
	}
	r, ok := p.net.Profile().MaxRate(p.signal[link], total)
	if !ok {
		return 0
	}
	return r
}

// Rates implements Model: the rates the link supports alone are every
// profile rate at or below its distance-limited maximum.
func (p *Physical) Rates(link topology.LinkID) []radio.Rate {
	l, err := p.net.Link(link)
	if err != nil {
		return nil
	}
	var out []radio.Rate
	for _, r := range p.net.Profile().Rates() {
		if r <= l.MaxRate {
			out = append(out, r)
		}
	}
	return out
}

// MinPositiveRate returns the smallest positive rate the link may use
// (the weakest couple it can ever join an independent set with), or 0
// when it is unusable. Equivalent to the last positive entry of Rates
// without materializing the slice.
func (p *Physical) MinPositiveRate(link topology.LinkID) radio.Rate {
	l, err := p.net.Link(link)
	if err != nil {
		return 0
	}
	prof := p.net.Profile()
	var min radio.Rate
	for i := 0; i < prof.NumClasses(); i++ {
		if r := prof.Class(i).Rate; r > 0 && r <= l.MaxRate {
			min = r // descending: the last hit is the smallest
		}
	}
	return min
}

// MaxRateVector returns the maximum supported rate vector of a concurrent
// transmission set (paper Sec. 2.3): the i-th entry is the highest rate
// links[i] sustains while all the other listed links transmit. The
// second return is false if any link in the set cannot transmit at all
// (the set is not an independent set).
func (p *Physical) MaxRateVector(links []topology.LinkID) ([]radio.Rate, bool) {
	t := p.NewSetTracker(links)
	for i := range links {
		t.Push(i)
	}
	rates := make([]radio.Rate, len(links))
	ok := true
	for i := range links {
		rates[i] = t.MaxRate(i)
		if rates[i] == 0 {
			ok = false
		}
	}
	return rates, ok
}

// SetTracker incrementally evaluates maximum supported rates of a
// growing and shrinking concurrent transmission set over a fixed link
// universe. Because transmit powers are fixed, the interference power a
// set deposits at each receiver is a plain sum over its members
// (Eq. 3), so a DFS over subsets can maintain one running sum per
// receiver across Push/Pop instead of recomputing the O(L^2) total at
// every node. Enumeration (internal/indepset) drives this; MaxRateVector
// is the one-shot wrapper.
//
// Positions index into the universe passed to NewSetTracker. Push order
// defines the summation order, matching MaxRate's couple order, so the
// tracker is bit-for-bit consistent with the non-incremental path.
type SetTracker struct {
	noise float64
	// Per universe position, in universe order:
	signal  []float64
	interf  [][]float64 // interf[from][at], 0 on the diagonal
	shares  [][]bool    // half-duplex node sharing (false for identical IDs)
	thr     [][]float64 // linear SINR thresholds of decodable classes, descending rate
	thrRate [][]radio.Rate
	// DFS state:
	sums    []float64   // interference at each position from current members
	saved   [][]float64 // sums snapshot per depth, restored on Pop
	blocked []int       // members sharing a node with this position
	members []int
}

// NewSetTracker builds a tracker over the given universe with an empty
// member set. Unresolvable link IDs never support any rate.
func (p *Physical) NewSetTracker(universe []topology.LinkID) *SetTracker {
	n := len(universe)
	prof := p.net.Profile()
	nc := prof.NumClasses()
	// Flat backing arrays keep the per-enumeration allocation count
	// constant instead of O(n).
	fback := make([]float64, 2*n*n+n*nc+2*n)
	hback := make([][]float64, 3*n)
	bback := make([]bool, n*n)
	rback := make([]radio.Rate, n*nc)
	t := &SetTracker{
		noise:   prof.Noise(),
		signal:  fback[2*n*n+n*nc : 2*n*n+n*nc+n],
		interf:  hback[:n],
		shares:  make([][]bool, n),
		thr:     hback[2*n : 3*n],
		thrRate: make([][]radio.Rate, n),
		sums:    fback[2*n*n+n*nc+n:],
		saved:   hback[n : 2*n],
		blocked: make([]int, n),
		members: make([]int, 0, n),
	}
	links := make([]topology.Link, n)
	valid := make([]bool, n)
	for i, id := range universe {
		l, err := p.net.Link(id)
		links[i], valid[i] = l, err == nil
		t.signal[i] = p.SignalPower(id)
		// Classes whose sensitivity the receiver meets; the SINR check is
		// the only interference-dependent part left for MaxRate.
		t.thr[i] = fback[2*n*n+i*nc : 2*n*n+i*nc : 2*n*n+(i+1)*nc]
		t.thrRate[i] = rback[i*nc : i*nc : (i+1)*nc]
		for k := 0; k < nc; k++ {
			c := prof.Class(k)
			sens, _ := prof.Sensitivity(c.Rate)
			if valid[i] && t.signal[i] >= sens {
				sinr, _ := prof.SINRThreshold(c.Rate)
				t.thr[i] = append(t.thr[i], sinr)
				t.thrRate[i] = append(t.thrRate[i], c.Rate)
			}
		}
	}
	for a, ida := range universe {
		t.interf[a] = fback[a*n : (a+1)*n]
		t.saved[a] = fback[(n+a)*n : (n+a+1)*n]
		t.shares[a] = bback[a*n : (a+1)*n]
		for b, idb := range universe {
			t.interf[a][b] = p.InterferencePower(ida, idb)
			// Duplicate positions of one link ignore each other, like
			// MaxRate ignores couples on the queried link itself.
			t.shares[a][b] = ida != idb && valid[a] && valid[b] && SharesNode(links[a], links[b])
		}
	}
	return t
}

// Push adds universe position i to the member set.
func (t *SetTracker) Push(i int) {
	d := len(t.members)
	copy(t.saved[d], t.sums)
	row := t.interf[i]
	for j := range t.sums {
		t.sums[j] += row[j]
	}
	for j, s := range t.shares[i] {
		if s {
			t.blocked[j]++
		}
	}
	t.members = append(t.members, i)
}

// Pop removes the most recently pushed member.
func (t *SetTracker) Pop() {
	d := len(t.members) - 1
	i := t.members[d]
	t.members = t.members[:d]
	// Restoring the snapshot (rather than subtracting) keeps the sums
	// bit-identical to a fresh summation in push order.
	copy(t.sums, t.saved[d])
	for j, s := range t.shares[i] {
		if s {
			t.blocked[j]--
		}
	}
}

// Depth returns the number of members currently pushed.
func (t *SetTracker) Depth() int { return len(t.members) }

// MaxRate returns the maximum rate universe position i sustains
// alongside the current members (i's own membership is ignored), or 0
// when it is half-duplex blocked or no rate's SINR survives.
func (t *SetTracker) MaxRate(i int) radio.Rate {
	if t.blocked[i] > 0 {
		return 0
	}
	return t.rateAt(i, t.sums[i])
}

// MaxRateJoined returns the maximum rate position i would sustain if
// position j (not currently a member) also transmitted.
func (t *SetTracker) MaxRateJoined(i, j int) radio.Rate {
	if t.blocked[i] > 0 || t.shares[i][j] {
		return 0
	}
	return t.rateAt(i, t.sums[i]+t.interf[j][i])
}

func (t *SetTracker) rateAt(i int, interference float64) radio.Rate {
	sinr := t.signal[i] / (interference + t.noise)
	for k, thr := range t.thr[i] {
		if sinr >= thr {
			return t.thrRate[i][k]
		}
	}
	return 0
}
