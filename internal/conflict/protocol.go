package conflict

import (
	"math"

	"abw/internal/radio"
	"abw/internal/topology"
)

// Protocol is the pairwise interference-range model: transmitter k
// interferes with link j at rate r iff the transmitter sits within link
// j's rate-dependent interference radius
//
//	IR_j(r) = dist(tx_j, rx_j) * SINR(r)^(1/alpha),
//
// the distance at which a single interferer alone would push link j's
// SIR exactly to rate r's threshold. Higher rates need higher SINR and
// therefore have larger interference radii — the effect behind the
// paper's Scenario II chain, where L1 at 54 Mbps conflicts with L4 but
// L1 at 36 Mbps does not. Unlike Physical, interference is evaluated
// pairwise with no power summation. Half-duplex node exclusivity is
// enforced.
type Protocol struct {
	net *topology.Network
	// fp memoizes the canonical content fingerprint (fingerprint.go).
	fp fpMemo
}

var _ PairwiseModel = (*Protocol)(nil)

// NewProtocol builds a Protocol model over the given network.
func NewProtocol(net *topology.Network) *Protocol {
	return &Protocol{net: net}
}

// Network returns the underlying network.
func (p *Protocol) Network() *topology.Network { return p.net }

// interferenceRadius returns IR for a link of length dist at rate r.
func (p *Protocol) interferenceRadius(dist float64, r radio.Rate) float64 {
	thr, ok := p.net.Profile().SINRThreshold(r)
	if !ok {
		return math.Inf(1)
	}
	return dist * math.Pow(thr, 1/p.net.Profile().Exponent())
}

// MaxRate implements Model.
func (p *Protocol) MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate {
	self, err := p.net.Link(link)
	if err != nil {
		return 0
	}
	for _, c := range concurrent {
		if c.Link == link {
			continue
		}
		other, err := p.net.Link(c.Link)
		if err != nil {
			return 0
		}
		if SharesNode(self, other) {
			return 0
		}
	}
	// Highest available rate whose interference radius excludes every
	// concurrent transmitter.
	for _, r := range p.Rates(link) {
		ir := p.interferenceRadius(self.Dist, r)
		clear := true
		for _, c := range concurrent {
			if c.Link == link {
				continue
			}
			other, err := p.net.Link(c.Link)
			if err != nil {
				return 0
			}
			if mustNodeDist(p.net, other.Tx, self.Rx) <= ir {
				clear = false
				break
			}
		}
		if clear {
			return r
		}
	}
	return 0
}

// RateClears implements PairwiseModel: rate r of link survives the other
// couple exactly when the two links share no node and the other
// transmitter sits outside link's interference radius at r. The distance
// comparison is the same one MaxRate performs, so the two stay
// bit-for-bit consistent.
func (p *Protocol) RateClears(link topology.LinkID, r radio.Rate, other Couple) bool {
	self, err := p.net.Link(link)
	if err != nil {
		return false
	}
	o, err := p.net.Link(other.Link)
	if err != nil {
		return false
	}
	if SharesNode(self, o) {
		return false
	}
	return mustNodeDist(p.net, o.Tx, self.Rx) > p.interferenceRadius(self.Dist, r)
}

// Rates implements Model.
func (p *Protocol) Rates(link topology.LinkID) []radio.Rate {
	l, err := p.net.Link(link)
	if err != nil {
		return nil
	}
	var out []radio.Rate
	for _, r := range p.net.Profile().Rates() {
		if r <= l.MaxRate {
			out = append(out, r)
		}
	}
	return out
}
