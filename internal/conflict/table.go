package conflict

import (
	"fmt"
	"sort"

	"abw/internal/radio"
	"abw/internal/topology"
)

// Table is an explicitly enumerated pairwise conflict model. It exists
// to encode the paper's worked examples (Fig. 1 Scenario I and II)
// exactly as stated, and to build adversarial fixtures in tests. The
// caller declares which rates each link supports alone and which
// (link, rate) couples interfere; anything not declared does not
// conflict. Node-exclusivity must be encoded explicitly with
// AddConflictAllRates when it matters.
type Table struct {
	rates     map[topology.LinkID][]radio.Rate
	conflicts map[pairKey]bool
	// fp memoizes the canonical content fingerprint (fingerprint.go);
	// all SetRates/AddConflict calls must precede the first Fingerprint.
	fp fpMemo
}

var _ PairwiseModel = (*Table)(nil)

type coupleKey struct {
	link topology.LinkID
	rate radio.Rate
}

type pairKey struct {
	a coupleKey
	b coupleKey
}

func normPair(a, b coupleKey) pairKey {
	if b.link < a.link || (b.link == a.link && b.rate < a.rate) {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// NewTable returns an empty table model.
func NewTable() *Table {
	return &Table{
		rates:     make(map[topology.LinkID][]radio.Rate),
		conflicts: make(map[pairKey]bool),
	}
}

// SetRates declares the rates link supports when transmitting alone.
func (t *Table) SetRates(link topology.LinkID, rates ...radio.Rate) {
	rs := make([]radio.Rate, len(rates))
	copy(rs, rates)
	sort.Slice(rs, func(i, j int) bool { return rs[i] > rs[j] })
	t.rates[link] = rs
}

// AddConflict declares that (la, ra) and (lb, rb) cannot both succeed
// when transmitting simultaneously. The relation is symmetric.
func (t *Table) AddConflict(la topology.LinkID, ra radio.Rate, lb topology.LinkID, rb radio.Rate) error {
	if la == lb {
		return fmt.Errorf("conflict: self conflict on link %d", la)
	}
	t.conflicts[normPair(coupleKey{la, ra}, coupleKey{lb, rb})] = true
	return nil
}

// AddConflictAllRates declares that la and lb interfere at every
// declared rate combination — e.g. links sharing a node, or links whose
// mutual interference is rate-independent. SetRates must already have
// been called for both links.
func (t *Table) AddConflictAllRates(la, lb topology.LinkID) error {
	if len(t.rates[la]) == 0 || len(t.rates[lb]) == 0 {
		return fmt.Errorf("conflict: SetRates must be called for links %d and %d before AddConflictAllRates", la, lb)
	}
	for _, ra := range t.rates[la] {
		for _, rb := range t.rates[lb] {
			if err := t.AddConflict(la, ra, lb, rb); err != nil {
				return err
			}
		}
	}
	return nil
}

// HasConflict reports whether the given couples were declared
// conflicting.
func (t *Table) HasConflict(la topology.LinkID, ra radio.Rate, lb topology.LinkID, rb radio.Rate) bool {
	return t.conflicts[normPair(coupleKey{la, ra}, coupleKey{lb, rb})]
}

// MaxRate implements Model.
func (t *Table) MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate {
	for _, r := range t.rates[link] {
		clear := true
		for _, c := range concurrent {
			if c.Link == link {
				continue
			}
			if t.HasConflict(link, r, c.Link, c.Rate) {
				clear = false
				break
			}
		}
		if clear {
			return r
		}
	}
	return 0
}

// RateClears implements PairwiseModel: a rate of link is usable against
// another couple exactly when no conflict was declared between them.
func (t *Table) RateClears(link topology.LinkID, r radio.Rate, other Couple) bool {
	return !t.HasConflict(link, r, other.Link, other.Rate)
}

// Rates implements Model.
func (t *Table) Rates(link topology.LinkID) []radio.Rate {
	rs := t.rates[link]
	out := make([]radio.Rate, len(rs))
	copy(out, rs)
	return out
}

// Links returns every link with declared rates, in ascending ID order.
func (t *Table) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(t.rates))
	for id := range t.rates {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
