// Package conflict decides which sets of concurrent transmissions are
// feasible in a multirate network. Its central abstraction follows the
// paper's observation that interference relations depend on the *rates*
// links use, not just on which links transmit: every question is asked
// about (link, rate) couples.
//
// Three models are provided:
//
//   - Physical: cumulative-interference SINR model (paper Eq. 1/3). The
//     maximum rate a link supports in a concurrent set depends only on
//     set membership (interference power is rate-independent), which is
//     what makes maximum supported rate vectors well-defined (Sec. 2.3).
//   - Protocol: pairwise rate-dependent interference ranges — a cheaper
//     model for baselines and tests.
//   - Table: explicitly enumerated pairwise conflicts, used to encode
//     the paper's worked examples (Fig. 1) exactly as stated.
package conflict

import (
	"fmt"

	"abw/internal/radio"
	"abw/internal/topology"
)

// Couple pairs a link with the rate it transmits at — the unit of the
// paper's rate-coupled independent sets and cliques.
type Couple struct {
	Link topology.LinkID
	Rate radio.Rate
}

// String implements fmt.Stringer.
func (c Couple) String() string {
	return fmt.Sprintf("(L%d, %v)", c.Link, c.Rate)
}

// Model answers rate-feasibility questions about concurrent
// transmissions.
type Model interface {
	// MaxRate returns the maximum rate link can sustain while every
	// couple in concurrent transmits simultaneously, or 0 if it cannot
	// transmit at all. Couples in concurrent referring to link itself
	// are ignored.
	MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate

	// Rates returns the rates link may use when transmitting alone, in
	// descending order. An empty slice means the link is unusable.
	Rates(link topology.LinkID) []radio.Rate
}

// PairwiseModel is implemented by models whose feasibility decomposes
// into independent pairwise constraints between couples: a rate r of a
// link is usable in a concurrent set exactly when RateClears(link, r, y)
// holds for every other couple y in the set, so that
//
//	MaxRate(link, concurrent) == max{r in Rates(link) :
//	        RateClears(link, r, y) for every y in concurrent, y.Link != link}
//
// (or 0 when no rate clears). Table and Protocol satisfy this; Physical
// does not — its cumulative interference sum couples all members at
// once. Enumeration exploits the decomposition to check feasibility
// incrementally: only the newly added couple needs to be tested against
// the current members.
type PairwiseModel interface {
	Model

	// RateClears reports whether link can transmit at rate r while the
	// single couple other transmits concurrently. Half-duplex node
	// exclusivity, where the model enforces it, must be folded in
	// (report false for every rate). Couples on link itself are never
	// passed.
	RateClears(link topology.LinkID, r radio.Rate, other Couple) bool
}

// Feasible reports whether all couples can transmit concurrently: every
// couple's rate must be within the maximum rate the model allows it given
// the others (the paper's independent-set condition, Sec. 2.4). Sets
// containing the same link twice are infeasible.
func Feasible(m Model, couples []Couple) bool {
	seen := make(map[topology.LinkID]bool, len(couples))
	for _, c := range couples {
		if seen[c.Link] {
			return false
		}
		seen[c.Link] = true
	}
	others := make([]Couple, 0, len(couples)-1)
	for i, c := range couples {
		if c.Rate <= 0 {
			return false
		}
		others = others[:0]
		for j, o := range couples {
			if j != i {
				others = append(others, o)
			}
		}
		if m.MaxRate(c.Link, others) < c.Rate {
			return false
		}
	}
	return true
}

// Interferes reports whether the two couples cannot both succeed when
// transmitting simultaneously — the paper's clique edge relation
// (Sec. 3.1).
func Interferes(m Model, a, b Couple) bool {
	if a.Link == b.Link {
		return true
	}
	return !Feasible(m, []Couple{a, b})
}

// SupportsAlone reports whether link can transmit at rate r with no
// concurrent traffic.
func SupportsAlone(m Model, link topology.LinkID, r radio.Rate) bool {
	for _, avail := range m.Rates(link) {
		if avail == r {
			return true
		}
	}
	return false
}

// AloneMaxRate returns the highest rate link supports when transmitting
// alone, or 0 if none.
func AloneMaxRate(m Model, link topology.LinkID) radio.Rate {
	rates := m.Rates(link)
	if len(rates) == 0 {
		return 0
	}
	return rates[0]
}

// SharesNode reports whether two links share an endpoint — the
// half-duplex constraint: a node cannot take part in two simultaneous
// transmissions.
func SharesNode(a, b topology.Link) bool {
	return a.Tx == b.Tx || a.Tx == b.Rx || a.Rx == b.Tx || a.Rx == b.Rx
}
