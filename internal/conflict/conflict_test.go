package conflict

import (
	"testing"

	"abw/internal/geom"
	"abw/internal/radio"
	"abw/internal/topology"
)

// chainNet builds an n-hop chain with the given spacing and returns the
// network plus the forward-hop link IDs.
func chainNet(t *testing.T, hops int, spacing float64) (*topology.Network, []topology.LinkID) {
	t.Helper()
	net, path, err := topology.Chain(radio.NewProfile80211a(), hops, spacing)
	if err != nil {
		t.Fatal(err)
	}
	return net, path
}

func TestPhysicalAloneRates(t *testing.T) {
	net, path := chainNet(t, 2, 50)
	m := NewPhysical(net)
	rates := m.Rates(path[0])
	want := []radio.Rate{54, 36, 18, 6}
	if len(rates) != len(want) {
		t.Fatalf("Rates = %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Errorf("rate %d = %v, want %v", i, rates[i], want[i])
		}
	}
	if got := m.MaxRate(path[0], nil); got != 54 {
		t.Errorf("MaxRate(alone) = %v, want 54", got)
	}
}

func TestPhysicalHalfDuplex(t *testing.T) {
	net, path := chainNet(t, 2, 50)
	m := NewPhysical(net)
	// Links 0->1 and 1->2 share node 1: never concurrent.
	if got := m.MaxRate(path[0], []Couple{{Link: path[1], Rate: 54}}); got != 0 {
		t.Errorf("adjacent hops sharing a node: MaxRate = %v, want 0", got)
	}
	if Feasible(m, []Couple{{Link: path[0], Rate: 6}, {Link: path[1], Rate: 6}}) {
		t.Error("adjacent hops should be infeasible at any rate")
	}
}

func TestPhysicalInterferenceDegradesRate(t *testing.T) {
	// Two parallel 50m links far enough apart to coexist at some rate
	// but close enough that 54 Mbps is lost: tune by separation.
	prof := radio.NewProfile80211a()
	mk := func(sep float64) (*Physical, topology.LinkID, topology.LinkID) {
		net, err := topology.New(prof, []geom.Point{
			{X: 0, Y: 0}, {X: 50, Y: 0},
			{X: 0, Y: sep}, {X: 50, Y: sep},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, ok1 := net.LinkBetween(0, 1)
		b, ok2 := net.LinkBetween(2, 3)
		if !ok1 || !ok2 {
			t.Fatal("missing links")
		}
		return NewPhysical(net), a, b
	}

	// Far apart: both keep 54.
	mFar, aFar, bFar := mk(10000)
	if got := mFar.MaxRate(aFar, []Couple{{Link: bFar, Rate: 54}}); got != 54 {
		t.Errorf("distant parallel links: MaxRate = %v, want 54", got)
	}
	// 54 needs SINR 24.56dB = 285.4x. Signal at 50m; interferer at
	// ~sep: need sep >= 50 * 285^(1/4) ~ 205m for 54. At 150m separation
	// 54 must fail but some lower rate may survive.
	mMid, aMid, bMid := mk(150)
	got := mMid.MaxRate(aMid, []Couple{{Link: bMid, Rate: 54}})
	if got >= 54 {
		t.Errorf("150m separation: MaxRate = %v, want < 54", got)
	}
	if got == 0 {
		t.Errorf("150m separation: MaxRate = 0, want a positive degraded rate")
	}
	// Very close: zero.
	mNear, aNear, bNear := mk(20)
	if got := mNear.MaxRate(aNear, []Couple{{Link: bNear, Rate: 54}}); got != 0 {
		t.Errorf("20m separation: MaxRate = %v, want 0", got)
	}
}

func TestPhysicalCumulativeInterference(t *testing.T) {
	// Several interferers whose individual powers are tolerable must sum:
	// with the physical model, k copies at the same distance k-fold the
	// interference.
	prof := radio.NewProfile80211a()
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, // link under test
		{X: 0, Y: 220}, {X: 50, Y: 220}, // interferer 1 (above)
		{X: 0, Y: -220}, {X: 50, Y: -220}, // interferer 2 (below)
		{X: -220, Y: 0}, {X: -220, Y: 50}, // interferer 3 (left)
	}
	net, err := topology.New(prof, pts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewPhysical(net)
	l, _ := net.LinkBetween(0, 1)
	i1, _ := net.LinkBetween(2, 3)
	i2, _ := net.LinkBetween(4, 5)
	i3, _ := net.LinkBetween(6, 7)
	r1 := m.MaxRate(l, []Couple{{Link: i1, Rate: 54}})
	r3 := m.MaxRate(l, []Couple{{Link: i1, Rate: 54}, {Link: i2, Rate: 54}, {Link: i3, Rate: 54}})
	if r3 > r1 {
		t.Errorf("more interferers raised the rate: %v > %v", r3, r1)
	}
	if r1 == 0 {
		t.Skip("geometry too tight for a single interferer; adjust fixture")
	}
	if r3 == r1 {
		t.Logf("note: cumulative interference did not cross a rate step (r1=%v r3=%v)", r1, r3)
	}
}

func TestPhysicalMaxRateVector(t *testing.T) {
	net, path := chainNet(t, 4, 50)
	m := NewPhysical(net)
	// Links 0 and 2 share no node (0->1, 2->3). At 50m spacing the gap
	// is only 50m, so they interfere heavily: expect low or zero rates.
	rates, _ := m.MaxRateVector([]topology.LinkID{path[0], path[2]})
	if len(rates) != 2 {
		t.Fatalf("rate vector length %d, want 2", len(rates))
	}
	// Adjacent links share a node: infeasible.
	if _, ok := m.MaxRateVector([]topology.LinkID{path[0], path[1]}); ok {
		t.Error("adjacent links should not form an independent set")
	}
	// Singleton always works.
	r, ok := m.MaxRateVector([]topology.LinkID{path[0]})
	if !ok || r[0] != 54 {
		t.Errorf("singleton = (%v, %v), want (54, true)", r, ok)
	}
}

func TestFeasibleRejectsDuplicateLink(t *testing.T) {
	net, path := chainNet(t, 2, 50)
	m := NewPhysical(net)
	if Feasible(m, []Couple{{Link: path[0], Rate: 54}, {Link: path[0], Rate: 36}}) {
		t.Error("duplicate link must be infeasible")
	}
	if Feasible(m, []Couple{{Link: path[0], Rate: 0}}) {
		t.Error("zero rate must be infeasible")
	}
}

func TestInterferes(t *testing.T) {
	net, path := chainNet(t, 2, 50)
	m := NewPhysical(net)
	a := Couple{Link: path[0], Rate: 54}
	b := Couple{Link: path[1], Rate: 54}
	if !Interferes(m, a, b) {
		t.Error("adjacent hops must interfere")
	}
	if !Interferes(m, a, a) {
		t.Error("a couple interferes with itself by convention")
	}
}

func TestTableModelScenarioII(t *testing.T) {
	tb := NewTable()
	for l := topology.LinkID(0); l < 4; l++ {
		tb.SetRates(l, 36, 54)
	}
	pairsAllRates := [][2]topology.LinkID{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	for _, p := range pairsAllRates {
		if err := tb.AddConflictAllRates(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.AddConflict(0, 54, 3, 36); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddConflict(0, 54, 3, 54); err != nil {
		t.Fatal(err)
	}

	// L1@36 + L4@54 is feasible (the paper's E4 slot).
	if !Feasible(tb, []Couple{{Link: 0, Rate: 36}, {Link: 3, Rate: 54}}) {
		t.Error("(L1,36)+(L4,54) should be feasible")
	}
	// L1@54 + L4@54 is not.
	if Feasible(tb, []Couple{{Link: 0, Rate: 54}, {Link: 3, Rate: 54}}) {
		t.Error("(L1,54)+(L4,54) should be infeasible")
	}
	// MaxRate of L1 given L4@54 is 36.
	if got := tb.MaxRate(0, []Couple{{Link: 3, Rate: 54}}); got != 36 {
		t.Errorf("MaxRate(L1 | L4@54) = %v, want 36", got)
	}
	// MaxRate of L1 given L2 transmitting is 0.
	if got := tb.MaxRate(0, []Couple{{Link: 1, Rate: 36}}); got != 0 {
		t.Errorf("MaxRate(L1 | L2@36) = %v, want 0", got)
	}
	// Alone max.
	if got := AloneMaxRate(tb, 0); got != 54 {
		t.Errorf("AloneMaxRate = %v, want 54", got)
	}
	if !SupportsAlone(tb, 0, 36) || SupportsAlone(tb, 0, 18) {
		t.Error("SupportsAlone rates wrong")
	}
}

func TestTableValidation(t *testing.T) {
	tb := NewTable()
	if err := tb.AddConflict(1, 54, 1, 36); err == nil {
		t.Error("self conflict: expected error")
	}
	if err := tb.AddConflictAllRates(1, 2); err == nil {
		t.Error("AddConflictAllRates before SetRates: expected error")
	}
	if got := tb.MaxRate(99, nil); got != 0 {
		t.Errorf("unknown link MaxRate = %v, want 0", got)
	}
	if got := AloneMaxRate(tb, 99); got != 0 {
		t.Errorf("unknown link AloneMaxRate = %v, want 0", got)
	}
}

func TestTableLinks(t *testing.T) {
	tb := NewTable()
	tb.SetRates(3, 54)
	tb.SetRates(1, 36)
	got := tb.Links()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Links = %v, want [1 3]", got)
	}
}

func TestProtocolModelRateDependentConflict(t *testing.T) {
	// Two 50m links separated so that the interferer is inside the 54
	// interference radius but outside the 36 radius:
	// IR(54) = 50 * 285.1^(1/4) ~ 205.4m; IR(36) = 50 * 75.86^(1/4) ~ 147.6m.
	prof := radio.NewProfile80211a()
	net, err := topology.New(prof, []geom.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0},
		{X: 0, Y: 180}, {X: 50, Y: 180},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewProtocol(net)
	a, _ := net.LinkBetween(0, 1)
	b, _ := net.LinkBetween(2, 3)
	// Interferer tx at (0,180); receiver of a at (50,0): distance
	// sqrt(50^2+180^2) ~ 186.8m — inside IR(54), outside IR(36).
	got := m.MaxRate(a, []Couple{{Link: b, Rate: 54}})
	if got != 36 {
		t.Errorf("MaxRate under one interferer = %v, want 36", got)
	}
	// Alone: 54.
	if got := m.MaxRate(a, nil); got != 54 {
		t.Errorf("MaxRate alone = %v, want 54", got)
	}
}

func TestProtocolHalfDuplex(t *testing.T) {
	net, path := chainNet(t, 2, 50)
	m := NewProtocol(net)
	if got := m.MaxRate(path[0], []Couple{{Link: path[1], Rate: 6}}); got != 0 {
		t.Errorf("adjacent hops: MaxRate = %v, want 0", got)
	}
}

func TestProtocolNoPowerSumming(t *testing.T) {
	// Protocol is pairwise: many interferers each outside IR do not sum.
	prof := radio.NewProfile80211a()
	pts := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}
	// Ring of interferer links at 280m > IR(54) ~ 205m from rx.
	for i := 0; i < 4; i++ {
		base := geom.Point{X: 50 + 280, Y: float64(i * 300)}
		pts = append(pts, base, base.Add(geom.Point{X: 50}))
	}
	net, err := topology.New(prof, pts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewProtocol(net)
	a, _ := net.LinkBetween(0, 1)
	var conc []Couple
	for i := 0; i < 4; i++ {
		id, ok := net.LinkBetween(topology.NodeID(2+2*i), topology.NodeID(3+2*i))
		if !ok {
			t.Fatal("missing interferer link")
		}
		conc = append(conc, Couple{Link: id, Rate: 54})
	}
	if got := m.MaxRate(a, conc); got != 54 {
		t.Errorf("protocol model should ignore cumulative power: MaxRate = %v, want 54", got)
	}
	// The physical model, in contrast, degrades under the same load.
	pm := NewPhysical(net)
	if got := pm.MaxRate(a, conc); got >= 54 {
		t.Logf("physical MaxRate = %v (cumulative interference may or may not cross a step here)", got)
	}
}

func TestCoupleString(t *testing.T) {
	c := Couple{Link: 3, Rate: 54}
	if got := c.String(); got != "(L3, 54Mbps)" {
		t.Errorf("String = %q", got)
	}
}

func TestFixedRatesWrapper(t *testing.T) {
	tb := NewTable()
	tb.SetRates(0, 54, 36)
	tb.SetRates(1, 54, 36)
	if err := tb.AddConflict(0, 54, 1, 54); err != nil {
		t.Fatal(err)
	}
	fixed := FixRates(tb, []Couple{{Link: 0, Rate: 36}, {Link: 1, Rate: 54}})
	// Link 0 only offers 36 now.
	if got := fixed.Rates(0); len(got) != 1 || got[0] != 36 {
		t.Errorf("Rates(0) = %v, want [36]", got)
	}
	if got := fixed.MaxRate(0, nil); got != 36 {
		t.Errorf("MaxRate(0 alone) = %v, want 36", got)
	}
	// 0@36 vs 1@54 has no declared conflict: both allowed.
	if got := fixed.MaxRate(0, []Couple{{Link: 1, Rate: 54}}); got != 36 {
		t.Errorf("MaxRate(0 | 1@54) = %v, want 36", got)
	}
	// Unassigned links are silenced.
	tb.SetRates(2, 54)
	if fixed.MaxRate(2, nil) != 0 || fixed.Rates(2) != nil {
		t.Error("unassigned link should support nothing")
	}
	// Pinning a rate the link does not support alone yields nothing.
	bad := FixRates(tb, []Couple{{Link: 0, Rate: 18}})
	if bad.Rates(0) != nil {
		t.Error("pinned unsupported rate should yield no rates")
	}
}

func TestFixedRatesConflictEnforced(t *testing.T) {
	tb := NewTable()
	tb.SetRates(0, 54)
	tb.SetRates(1, 54)
	if err := tb.AddConflictAllRates(0, 1); err != nil {
		t.Fatal(err)
	}
	fixed := FixRates(tb, []Couple{{Link: 0, Rate: 54}, {Link: 1, Rate: 54}})
	if got := fixed.MaxRate(0, []Couple{{Link: 1, Rate: 54}}); got != 0 {
		t.Errorf("MaxRate under conflict = %v, want 0", got)
	}
}
