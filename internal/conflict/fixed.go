package conflict

import (
	"abw/internal/radio"
	"abw/internal/topology"
)

// FixedRates wraps a model and pins every listed link to a single rate —
// the "fixed rate assignment" regime the paper contrasts with link
// adaptation (Sec. 2.4, 3.1). Links outside the assignment support no
// rate at all under the wrapper.
type FixedRates struct {
	inner    Model
	assigned map[topology.LinkID]radio.Rate
}

var _ Model = (*FixedRates)(nil)

// FixRates builds a FixedRates wrapper from one couple per link.
// Duplicate links keep the last assignment.
func FixRates(inner Model, assignment []Couple) *FixedRates {
	m := &FixedRates{inner: inner, assigned: make(map[topology.LinkID]radio.Rate, len(assignment))}
	for _, cp := range assignment {
		m.assigned[cp.Link] = cp.Rate
	}
	return m
}

// MaxRate implements Model: the pinned rate when the inner model
// sustains it against the concurrent set, else 0.
func (m *FixedRates) MaxRate(link topology.LinkID, concurrent []Couple) radio.Rate {
	pinned, ok := m.assigned[link]
	if !ok || pinned <= 0 {
		return 0
	}
	if m.inner.MaxRate(link, concurrent) >= pinned {
		return pinned
	}
	return 0
}

// Rates implements Model.
func (m *FixedRates) Rates(link topology.LinkID) []radio.Rate {
	pinned, ok := m.assigned[link]
	if !ok || pinned <= 0 {
		return nil
	}
	for _, r := range m.inner.Rates(link) {
		if r == pinned {
			return []radio.Rate{pinned}
		}
	}
	return nil
}
