package conflict

import (
	"math/rand"
	"testing"

	"abw/internal/radio"
	"abw/internal/topology"
)

// pairwiseMaxRate recomputes MaxRate through the PairwiseModel contract:
// the highest declared rate that clears every concurrent couple
// individually. The decomposition must agree with the model's own
// MaxRate on every input — that is what licenses the bitmask
// enumeration walk in internal/indepset.
func pairwiseMaxRate(m PairwiseModel, link topology.LinkID, concurrent []Couple) radio.Rate {
	for _, r := range m.Rates(link) { // descending
		clear := true
		for _, c := range concurrent {
			if c.Link == link {
				continue
			}
			if !m.RateClears(link, r, c) {
				clear = false
				break
			}
		}
		if clear {
			return r
		}
	}
	return 0
}

// randomCouples draws a random concurrent set over the given links.
func randomCouples(rng *rand.Rand, m Model, links []topology.LinkID) []Couple {
	var out []Couple
	for _, l := range links {
		rs := m.Rates(l)
		if len(rs) == 0 || rng.Float64() < 0.5 {
			continue
		}
		out = append(out, Couple{Link: l, Rate: rs[rng.Intn(len(rs))]})
	}
	return out
}

func assertPairwiseDecomposition(t *testing.T, m PairwiseModel, links []topology.LinkID, label string) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		concurrent := randomCouples(rng, m, links)
		for _, l := range links {
			got := m.MaxRate(l, concurrent)
			want := pairwiseMaxRate(m, l, concurrent)
			if got != want {
				t.Fatalf("%s: MaxRate(%d, %v) = %v, pairwise decomposition gives %v",
					label, l, concurrent, got, want)
			}
		}
	}
}

func TestProtocolPairwiseDecomposition(t *testing.T) {
	net, links := chainNet(t, 7, 90)
	assertPairwiseDecomposition(t, NewProtocol(net), links, "protocol chain")
}

func TestTablePairwiseDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rates := []radio.Rate{54, 36, 18, 6}
	tb := NewTable()
	var links []topology.LinkID
	const n = 6
	for i := topology.LinkID(0); i < n; i++ {
		tb.SetRates(i, rates[:1+rng.Intn(len(rates))]...)
		links = append(links, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, ri := range tb.Rates(topology.LinkID(i)) {
				for _, rj := range tb.Rates(topology.LinkID(j)) {
					if rng.Float64() < 0.4 {
						if err := tb.AddConflict(topology.LinkID(i), ri, topology.LinkID(j), rj); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
	assertPairwiseDecomposition(t, tb, links, "random table")
}

// TestSetTrackerMatchesMaxRate walks every subset of a chain's links
// with the incremental tracker and checks, at each DFS node, that the
// running-sum rates agree *exactly* (bit-for-bit, not approximately)
// with the from-scratch Physical.MaxRate — including the predictive
// MaxRateJoined used for in-DFS link-maximality.
func TestSetTrackerMatchesMaxRate(t *testing.T) {
	net, links := chainNet(t, 6, 100)
	m := NewPhysical(net)
	tr := m.NewSetTracker(links)
	n := len(links)

	var members []int
	couples := func() []Couple {
		out := make([]Couple, 0, len(members))
		for _, mi := range members {
			// Physical.MaxRate only reads couple links, so any positive
			// rate stands in.
			out = append(out, Couple{Link: links[mi], Rate: 6})
		}
		return out
	}
	checked := 0
	var rec func(start int)
	rec = func(start int) {
		cs := couples()
		inSet := make([]bool, n)
		for _, mi := range members {
			inSet[mi] = true
		}
		for i := 0; i < n; i++ {
			fresh := m.MaxRate(links[i], cs)
			if got := tr.MaxRate(i); got != fresh {
				t.Fatalf("members %v: tracker MaxRate(%d) = %v, fresh = %v", members, i, got, fresh)
			}
			for j := 0; j < n; j++ {
				if i == j || inSet[j] {
					continue
				}
				freshJoined := m.MaxRate(links[i], append(cs, Couple{Link: links[j], Rate: 6}))
				if got := tr.MaxRateJoined(i, j); got != freshJoined {
					t.Fatalf("members %v: tracker MaxRateJoined(%d,%d) = %v, fresh = %v",
						members, i, j, got, freshJoined)
				}
			}
			checked++
		}
		for i := start; i < n; i++ {
			tr.Push(i)
			members = append(members, i)
			rec(i + 1)
			members = members[:len(members)-1]
			tr.Pop()
		}
	}
	rec(0)
	if checked == 0 {
		t.Fatal("walk checked nothing")
	}
}

// TestMaxRateVectorMatchesMaxRate pins the one-shot wrapper to the
// from-scratch model on chains of varying contention.
func TestMaxRateVectorMatchesMaxRate(t *testing.T) {
	for _, spacing := range []float64{60, 100, 150} {
		net, links := chainNet(t, 5, spacing)
		m := NewPhysical(net)
		for mask := 1; mask < 1<<len(links); mask++ {
			var sub []topology.LinkID
			var cs []Couple
			for i, l := range links {
				if mask&(1<<i) != 0 {
					sub = append(sub, l)
					cs = append(cs, Couple{Link: l, Rate: 6})
				}
			}
			rates, ok := m.MaxRateVector(sub)
			allOK := true
			for i, l := range sub {
				fresh := m.MaxRate(l, cs)
				if rates[i] != fresh {
					t.Fatalf("spacing %g, set %v: vector[%d] = %v, fresh MaxRate = %v",
						spacing, sub, i, rates[i], fresh)
				}
				if fresh == 0 {
					allOK = false
				}
			}
			if ok != allOK {
				t.Fatalf("spacing %g, set %v: ok = %v, want %v", spacing, sub, ok, allOK)
			}
		}
	}
}
