package conflict

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
	"sync"

	"abw/internal/topology"
)

// Fingerprinter is implemented by conflict models that can name their
// own identity with a canonical content fingerprint: two models answer
// every MaxRate/Rates question identically whenever their fingerprints
// are equal, and models built from different parameters (a moved node,
// a changed link rate, a different profile) fingerprint differently.
//
// The fingerprint is what keys the set-family cache (internal/memo):
// it must be stable across processes and independent of construction
// order. All three models in this package implement it.
//
// Models are immutable after construction (the package-wide contract
// enumeration already relies on); the fingerprint is computed lazily on
// first use and memoized, so a Table must receive all of its SetRates /
// AddConflict calls before the first Fingerprint call.
type Fingerprinter interface {
	// Fingerprint returns the canonical content fingerprint, a short
	// hex string safe to embed in composite cache keys.
	Fingerprint() string
}

var (
	_ Fingerprinter = (*Physical)(nil)
	_ Fingerprinter = (*Protocol)(nil)
	_ Fingerprinter = (*Table)(nil)
)

// fpWriter accumulates canonical content into a sha256 state. All
// floats are written as their IEEE-754 bit patterns, so the fingerprint
// distinguishes exactly the values the model computes with.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func newFPWriter() *fpWriter { return &fpWriter{h: sha256.New()} }

func (w *fpWriter) str(s string) {
	w.int(len(s))
	w.h.Write([]byte(s))
}

func (w *fpWriter) int(v int) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(int64(v)))
	w.h.Write(w.buf[:])
}

func (w *fpWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
	w.h.Write(w.buf[:])
}

func (w *fpWriter) sum() string {
	return hex.EncodeToString(w.h.Sum(nil)[:16])
}

// network writes everything model behavior can depend on about a
// network: the calibrated profile (classes with their thresholds, the
// path-loss exponent, powers, the noise floor, the carrier-sense
// range), node positions, and every link with its endpoints, length and
// alone-maximum rate.
func (w *fpWriter) network(net *topology.Network) {
	prof := net.Profile()
	w.int(prof.NumClasses())
	for i := 0; i < prof.NumClasses(); i++ {
		c := prof.Class(i)
		w.f64(float64(c.Rate))
		w.f64(c.Range)
		w.f64(c.SINRdB)
		sens, _ := prof.Sensitivity(c.Rate)
		thr, _ := prof.SINRThreshold(c.Rate)
		w.f64(sens)
		w.f64(thr)
	}
	w.f64(prof.Exponent())
	w.f64(prof.TxPower())
	w.f64(prof.Noise())
	w.f64(prof.CSRange())
	nodes := net.Nodes()
	w.int(len(nodes))
	for _, n := range nodes {
		w.int(int(n.ID))
		w.f64(n.Pos.X)
		w.f64(n.Pos.Y)
	}
	links := net.Links()
	w.int(len(links))
	for _, l := range links {
		w.int(int(l.ID))
		w.int(int(l.Tx))
		w.int(int(l.Rx))
		w.f64(l.Dist)
		w.f64(float64(l.MaxRate))
	}
}

// Physical fingerprint state, memoized on first use.
type fpMemo struct {
	once sync.Once
	fp   string
}

func (m *fpMemo) get(compute func() string) string {
	m.once.Do(func() { m.fp = compute() })
	return m.fp
}

// Fingerprint implements Fingerprinter: the canonical identity of the
// SINR model is its network (profile, positions, links).
func (p *Physical) Fingerprint() string {
	return p.fp.get(func() string {
		w := newFPWriter()
		w.str("conflict.Physical/v1")
		w.network(p.net)
		return w.sum()
	})
}

// Fingerprint implements Fingerprinter: the canonical identity of the
// interference-range model is its network (profile, positions, links).
// The leading tag keeps a Physical and a Protocol over the same network
// — which answer differently — from colliding.
func (p *Protocol) Fingerprint() string {
	return p.fp.get(func() string {
		w := newFPWriter()
		w.str("conflict.Protocol/v1")
		w.network(p.net)
		return w.sum()
	})
}

// Fingerprint implements Fingerprinter: the declared rate lists and the
// conflict pairs, serialized in sorted order so the fingerprint does not
// depend on declaration order. The table must be fully built (all
// SetRates/AddConflict calls done) before the first Fingerprint call.
func (t *Table) Fingerprint() string {
	return t.fp.get(func() string {
		w := newFPWriter()
		w.str("conflict.Table/v1")
		links := t.Links()
		w.int(len(links))
		for _, l := range links {
			w.int(int(l))
			rs := t.rates[l]
			w.int(len(rs))
			for _, r := range rs {
				w.f64(float64(r))
			}
		}
		pairs := make([]pairKey, 0, len(t.conflicts))
		for pk, on := range t.conflicts {
			if on {
				pairs = append(pairs, pk)
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
		w.int(len(pairs))
		for _, pk := range pairs {
			w.int(int(pk.a.link))
			w.f64(float64(pk.a.rate))
			w.int(int(pk.b.link))
			w.f64(float64(pk.b.rate))
		}
		return w.sum()
	})
}

func pairLess(x, y pairKey) bool {
	if x.a.link != y.a.link {
		return x.a.link < y.a.link
	}
	if x.a.rate != y.a.rate {
		return x.a.rate < y.a.rate
	}
	if x.b.link != y.b.link {
		return x.b.link < y.b.link
	}
	return x.b.rate < y.b.rate
}

// FallbackFingerprint returns the fingerprint of m when it implements
// Fingerprinter and "" otherwise; callers use the empty result to
// bypass caching rather than risk keying distinct models together.
func FallbackFingerprint(m Model) string {
	if f, ok := m.(Fingerprinter); ok {
		return f.Fingerprint()
	}
	return ""
}
