package topology

import (
	"math"
	"testing"

	"abw/internal/geom"
	"abw/internal/radio"
)

func testProfile() *radio.Profile {
	return radio.NewProfile80211a()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Error("nil profile: expected error")
	}
	if _, err := New(testProfile(), nil); err == nil {
		t.Error("no positions: expected error")
	}
}

func TestTwoNodeNetwork(t *testing.T) {
	net, err := New(testProfile(), []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", net.NumNodes())
	}
	if net.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2 (both directions)", net.NumLinks())
	}
	id, ok := net.LinkBetween(0, 1)
	if !ok {
		t.Fatal("no link 0->1")
	}
	l := net.MustLink(id)
	if l.MaxRate != 54 {
		t.Errorf("50m link MaxRate = %v, want 54", l.MaxRate)
	}
	if math.Abs(l.Dist-50) > 1e-12 {
		t.Errorf("Dist = %g, want 50", l.Dist)
	}
}

func TestLinkRatesByDistance(t *testing.T) {
	tests := []struct {
		name    string
		spacing float64
		want    radio.Rate
	}{
		{"54 zone", 50, 54},
		{"36 zone", 70, 36},
		{"18 zone", 100, 18},
		{"6 zone", 150, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			net, err := New(testProfile(), []geom.Point{{X: 0, Y: 0}, {X: tt.spacing, Y: 0}})
			if err != nil {
				t.Fatal(err)
			}
			id, ok := net.LinkBetween(0, 1)
			if !ok {
				t.Fatal("no link")
			}
			if got := net.MustLink(id).MaxRate; got != tt.want {
				t.Errorf("MaxRate at %gm = %v, want %v", tt.spacing, got, tt.want)
			}
		})
	}
}

func TestOutOfRangeNodesGetNoLink(t *testing.T) {
	net, err := New(testProfile(), []geom.Point{{X: 0, Y: 0}, {X: 200, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLinks() != 0 {
		t.Errorf("NumLinks = %d, want 0 for 200m spacing", net.NumLinks())
	}
	if _, ok := net.LinkBetween(0, 1); ok {
		t.Error("LinkBetween should report no link")
	}
}

func TestOutInLinks(t *testing.T) {
	// Three nodes in a line, 50m apart: 0-1, 1-2 in range; 0-2 at 100m
	// also in range (18 Mbps).
	net, err := New(testProfile(), geom.LinePoints(3, 50))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.OutLinks(0)); got != 2 {
		t.Errorf("node 0 out-links = %d, want 2", got)
	}
	if got := len(net.InLinks(1)); got != 2 {
		t.Errorf("node 1 in-links = %d, want 2", got)
	}
	if got := net.OutLinks(NodeID(99)); got != nil {
		t.Errorf("OutLinks(out of range) = %v, want nil", got)
	}
}

func TestPathRoundTrip(t *testing.T) {
	net, path, err := Chain(testProfile(), 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("chain path has %d links, want 4", len(path))
	}
	nodes, err := net.PathNodes(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 1, 2, 3, 4}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d = %v, want %v", i, nodes[i], want[i])
		}
	}
	back, err := net.PathFromNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range path {
		if back[i] != path[i] {
			t.Errorf("link %d = %v, want %v", i, back[i], path[i])
		}
	}
}

func TestPathFromNodesErrors(t *testing.T) {
	net, _, err := Chain(testProfile(), 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.PathFromNodes([]NodeID{0}); err == nil {
		t.Error("single-node path: expected error")
	}
	// Node 0 -> node 0 has no self link.
	if _, err := net.PathFromNodes([]NodeID{0, 0}); err == nil {
		t.Error("self loop: expected error")
	}
}

func TestPathNodesBrokenChain(t *testing.T) {
	net, err := New(testProfile(), geom.LinePoints(4, 50))
	if err != nil {
		t.Fatal(err)
	}
	l01, _ := net.LinkBetween(0, 1)
	l23, _ := net.LinkBetween(2, 3)
	if err := net.ValidatePath(Path{l01, l23}); err == nil {
		t.Error("disconnected link sequence: expected error")
	}
	if err := net.ValidatePath(Path{}); err == nil {
		t.Error("empty path: expected error")
	}
	if err := net.ValidatePath(Path{LinkID(9999)}); err == nil {
		t.Error("bogus link id: expected error")
	}
}

func TestTxRxDist(t *testing.T) {
	net, path, err := Chain(testProfile(), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Link 0 transmits from node 0; link 2's receiver is node 3 at 150m.
	d, err := net.TxRxDist(path[0], path[2])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-150) > 1e-9 {
		t.Errorf("TxRxDist = %g, want 150", d)
	}
}

func TestLinkUnion(t *testing.T) {
	p1 := Path{LinkID(3), LinkID(1)}
	p2 := Path{LinkID(1), LinkID(2)}
	got := LinkUnion(p1, p2)
	want := []LinkID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("LinkUnion = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LinkUnion[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(testProfile(), geom.Rect{W: 400, H: 600}, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(testProfile(), geom.Rect{W: 400, H: 600}, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Errorf("same seed produced different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
}

func TestChainErrors(t *testing.T) {
	if _, _, err := Chain(testProfile(), 0, 50); err == nil {
		t.Error("zero hops: expected error")
	}
	if _, _, err := Chain(testProfile(), 2, 500); err == nil {
		t.Error("spacing beyond range: expected error")
	}
}

func TestNodeLinkAccessors(t *testing.T) {
	net, _, err := Chain(testProfile(), 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node(NodeID(-1)); err == nil {
		t.Error("Node(-1): expected error")
	}
	if _, err := net.Link(LinkID(999)); err == nil {
		t.Error("Link(999): expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLink(999) should panic")
		}
	}()
	net.MustLink(LinkID(999))
}
