package topology

import (
	"math/rand"
	"testing"

	"abw/internal/geom"
	"abw/internal/radio"
)

// TestRandomNetworkInvariants checks structural invariants over many
// random draws: link symmetry (same distance both ways), rate
// consistency with the profile, and adjacency index integrity.
func TestRandomNetworkInvariants(t *testing.T) {
	prof := radio.NewProfile80211a()
	for seed := int64(1); seed <= 10; seed++ {
		net, err := Random(prof, geom.Rect{W: 300, H: 300}, 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range net.Links() {
			// Every link's rate must match the profile at its distance.
			wantRate, ok := prof.MaxRateAtDistance(l.Dist)
			if !ok || wantRate != l.MaxRate {
				t.Errorf("seed %d link %d: rate %v, profile says (%v,%v)", seed, l.ID, l.MaxRate, wantRate, ok)
			}
			// The reverse link must exist with the same distance and rate.
			revID, ok := net.LinkBetween(l.Rx, l.Tx)
			if !ok {
				t.Errorf("seed %d: link %d has no reverse", seed, l.ID)
				continue
			}
			rev := net.MustLink(revID)
			if rev.Dist != l.Dist || rev.MaxRate != l.MaxRate {
				t.Errorf("seed %d: reverse of link %d differs: %v vs %v", seed, l.ID, rev, l)
			}
			// Adjacency indexes must contain the link.
			if !containsLink(net.OutLinks(l.Tx), l.ID) {
				t.Errorf("seed %d: link %d missing from OutLinks(%d)", seed, l.ID, l.Tx)
			}
			if !containsLink(net.InLinks(l.Rx), l.ID) {
				t.Errorf("seed %d: link %d missing from InLinks(%d)", seed, l.ID, l.Rx)
			}
		}
		// Degrees sum to the link count, both directions.
		outSum, inSum := 0, 0
		for _, n := range net.Nodes() {
			outSum += len(net.OutLinks(n.ID))
			inSum += len(net.InLinks(n.ID))
		}
		if outSum != net.NumLinks() || inSum != net.NumLinks() {
			t.Errorf("seed %d: degree sums (%d out, %d in) != %d links", seed, outSum, inSum, net.NumLinks())
		}
	}
}

// TestMutatedCopiesAreIndependent verifies the copy-at-boundary
// contract: mutating returned slices must not corrupt the network.
func TestMutatedCopiesAreIndependent(t *testing.T) {
	net, _, err := Chain(radio.NewProfile80211a(), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	links := net.Links()
	links[0].MaxRate = 999
	if net.MustLink(links[0].ID).MaxRate == 999 {
		t.Error("mutating Links() result corrupted the network")
	}
	nodes := net.Nodes()
	nodes[0].Pos.X = 1e9
	fresh, err := net.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Pos.X == 1e9 {
		t.Error("mutating Nodes() result corrupted the network")
	}
	out := net.OutLinks(0)
	if len(out) > 0 {
		out[0] = LinkID(12345)
		if net.OutLinks(0)[0] == LinkID(12345) {
			t.Error("mutating OutLinks() result corrupted the adjacency")
		}
	}
}

// TestLinkUnionProperties fuzzes LinkUnion: sorted, deduplicated,
// complete.
func TestLinkUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var paths []Path
		want := map[LinkID]bool{}
		for p := 0; p < 1+rng.Intn(4); p++ {
			var path Path
			for l := 0; l < rng.Intn(6); l++ {
				id := LinkID(rng.Intn(10))
				path = append(path, id)
				want[id] = true
			}
			paths = append(paths, path)
		}
		got := LinkUnion(paths...)
		if len(got) != len(want) {
			t.Errorf("trial %d: union size %d, want %d", trial, len(got), len(want))
		}
		for i, id := range got {
			if !want[id] {
				t.Errorf("trial %d: unexpected link %d", trial, id)
			}
			if i > 0 && got[i-1] >= id {
				t.Errorf("trial %d: union not strictly sorted at %d", trial, i)
			}
		}
	}
}

func containsLink(ids []LinkID, id LinkID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
