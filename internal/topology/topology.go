// Package topology builds the network graph of the paper's evaluation:
// nodes placed on a plane, and a directed link between every ordered pair
// of nodes that can decode at least the lowest rate from each other. Each
// link carries the maximum rate its distance supports with no
// interference (receiver-sensitivity condition of paper Eq. 1).
package topology

import (
	"fmt"
	"math/rand"

	"abw/internal/geom"
	"abw/internal/radio"
)

// NodeID identifies a node within one Network. IDs are dense, starting
// at 0, and index into the slice returned by Nodes.
type NodeID int

// LinkID identifies a directed link within one Network. IDs are dense,
// starting at 0, and index into the slice returned by Links.
type LinkID int

// Node is a sensor node at a fixed position.
type Node struct {
	ID  NodeID
	Pos geom.Point
}

// Link is a directed transmitter-to-receiver pair.
type Link struct {
	ID LinkID
	// Tx and Rx are the transmitter and receiver nodes.
	Tx NodeID
	Rx NodeID
	// Dist is the transmitter-receiver distance in meters.
	Dist float64
	// MaxRate is the highest rate the link supports when transmitting
	// alone (distance/sensitivity-limited; paper Sec. 2.2).
	MaxRate radio.Rate
}

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("L%d(%d->%d @%v)", l.ID, l.Tx, l.Rx, l.MaxRate)
}

// Path is a sequence of links where each link's receiver is the next
// link's transmitter.
type Path []LinkID

// Network is an immutable multirate wireless network: a radio profile, a
// set of placed nodes, and every feasible directed link between them.
type Network struct {
	profile    *radio.Profile
	nodes      []Node
	links      []Link
	out        [][]LinkID
	in         [][]LinkID
	linkByPair map[[2]NodeID]LinkID
}

// New builds a network from node positions using the given radio
// profile. A directed link is created for every ordered pair of distinct
// nodes within the profile's maximum range.
func New(profile *radio.Profile, positions []geom.Point) (*Network, error) {
	if profile == nil {
		return nil, fmt.Errorf("topology: nil radio profile")
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("topology: no node positions")
	}
	n := &Network{
		profile:    profile,
		nodes:      make([]Node, 0, len(positions)),
		out:        make([][]LinkID, len(positions)),
		in:         make([][]LinkID, len(positions)),
		linkByPair: make(map[[2]NodeID]LinkID),
	}
	for i, p := range positions {
		n.nodes = append(n.nodes, Node{ID: NodeID(i), Pos: p})
	}
	for i := range n.nodes {
		for j := range n.nodes {
			if i == j {
				continue
			}
			d := n.nodes[i].Pos.Dist(n.nodes[j].Pos)
			rate, ok := profile.MaxRateAtDistance(d)
			if !ok {
				continue
			}
			id := LinkID(len(n.links))
			n.links = append(n.links, Link{
				ID:      id,
				Tx:      NodeID(i),
				Rx:      NodeID(j),
				Dist:    d,
				MaxRate: rate,
			})
			n.out[i] = append(n.out[i], id)
			n.in[j] = append(n.in[j], id)
			n.linkByPair[[2]NodeID{NodeID(i), NodeID(j)}] = id
		}
	}
	return n, nil
}

// Random builds a network with n nodes placed uniformly at random inside
// rect, seeded deterministically.
func Random(profile *radio.Profile, rect geom.Rect, n int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	return New(profile, geom.UniformPoints(rng, rect, n))
}

// Profile returns the radio profile the network was built with.
func (n *Network) Profile() *radio.Profile { return n.profile }

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumLinks returns the number of directed links.
func (n *Network) NumLinks() int { return len(n.links) }

// Nodes returns all nodes. The returned slice is a copy.
func (n *Network) Nodes() []Node {
	out := make([]Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// Links returns all links. The returned slice is a copy.
func (n *Network) Links() []Link {
	out := make([]Link, len(n.links))
	copy(out, n.links)
	return out
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) (Node, error) {
	if id < 0 || int(id) >= len(n.nodes) {
		return Node{}, fmt.Errorf("topology: node %d out of range [0,%d)", id, len(n.nodes))
	}
	return n.nodes[id], nil
}

// Link returns the link with the given ID.
func (n *Network) Link(id LinkID) (Link, error) {
	if id < 0 || int(id) >= len(n.links) {
		return Link{}, fmt.Errorf("topology: link %d out of range [0,%d)", id, len(n.links))
	}
	return n.links[id], nil
}

// MustLink is Link for callers that have already validated the ID; it
// panics on an out-of-range ID.
func (n *Network) MustLink(id LinkID) Link {
	l, err := n.Link(id)
	if err != nil {
		panic(err)
	}
	return l
}

// LinkBetween returns the link from a to b, if one exists.
func (n *Network) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := n.linkByPair[[2]NodeID{a, b}]
	return id, ok
}

// OutLinks returns the links transmitted by node id. The returned slice
// is a copy.
func (n *Network) OutLinks(id NodeID) []LinkID {
	if id < 0 || int(id) >= len(n.out) {
		return nil
	}
	out := make([]LinkID, len(n.out[id]))
	copy(out, n.out[id])
	return out
}

// InLinks returns the links received by node id. The returned slice is a
// copy.
func (n *Network) InLinks(id NodeID) []LinkID {
	if id < 0 || int(id) >= len(n.in) {
		return nil
	}
	out := make([]LinkID, len(n.in[id]))
	copy(out, n.in[id])
	return out
}

// NodeDist returns the distance in meters between two nodes.
func (n *Network) NodeDist(a, b NodeID) (float64, error) {
	na, err := n.Node(a)
	if err != nil {
		return 0, err
	}
	nb, err := n.Node(b)
	if err != nil {
		return 0, err
	}
	return na.Pos.Dist(nb.Pos), nil
}

// TxRxDist returns the distance from link a's transmitter to link b's
// receiver — the interference geometry of paper Eq. 3.
func (n *Network) TxRxDist(a, b LinkID) (float64, error) {
	la, err := n.Link(a)
	if err != nil {
		return 0, err
	}
	lb, err := n.Link(b)
	if err != nil {
		return 0, err
	}
	return n.NodeDist(la.Tx, lb.Rx)
}

// PathFromNodes converts a node sequence into the corresponding link
// path, verifying every hop exists.
func (n *Network) PathFromNodes(nodes []NodeID) (Path, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("topology: path needs at least two nodes, got %d", len(nodes))
	}
	path := make(Path, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		id, ok := n.LinkBetween(nodes[i], nodes[i+1])
		if !ok {
			return nil, fmt.Errorf("topology: no link from node %d to node %d", nodes[i], nodes[i+1])
		}
		path = append(path, id)
	}
	return path, nil
}

// PathNodes converts a link path back into its node sequence, verifying
// the links chain correctly.
func (n *Network) PathNodes(path Path) ([]NodeID, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("topology: empty path")
	}
	first, err := n.Link(path[0])
	if err != nil {
		return nil, err
	}
	nodes := make([]NodeID, 0, len(path)+1)
	nodes = append(nodes, first.Tx, first.Rx)
	for _, id := range path[1:] {
		l, err := n.Link(id)
		if err != nil {
			return nil, err
		}
		if l.Tx != nodes[len(nodes)-1] {
			return nil, fmt.Errorf("topology: link %d starts at node %d, previous hop ends at node %d",
				id, l.Tx, nodes[len(nodes)-1])
		}
		nodes = append(nodes, l.Rx)
	}
	return nodes, nil
}

// ValidatePath reports an error unless path is a well-formed chain of
// existing links.
func (n *Network) ValidatePath(path Path) error {
	_, err := n.PathNodes(path)
	return err
}

// LinkUnion returns the sorted, de-duplicated union of all links
// appearing on the given paths — the set P of the paper's Sec. 2.5.
func LinkUnion(paths ...Path) []LinkID {
	seen := make(map[LinkID]struct{})
	var out []LinkID
	for _, p := range paths {
		for _, id := range p {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	sortLinkIDs(out)
	return out
}

func sortLinkIDs(ids []LinkID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
