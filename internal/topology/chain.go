package topology

import (
	"fmt"

	"abw/internal/geom"
	"abw/internal/radio"
)

// Chain builds an (hops+1)-node line network with the given node spacing
// in meters and returns it together with the forward path over its hops.
// Chain topologies are the paper's Scenario I/II substrate (Fig. 1).
func Chain(profile *radio.Profile, hops int, spacing float64) (*Network, Path, error) {
	if hops < 1 {
		return nil, nil, fmt.Errorf("topology: chain needs at least one hop, got %d", hops)
	}
	net, err := New(profile, geom.LinePoints(hops+1, spacing))
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]NodeID, 0, hops+1)
	for i := 0; i <= hops; i++ {
		nodes = append(nodes, NodeID(i))
	}
	path, err := net.PathFromNodes(nodes)
	if err != nil {
		return nil, nil, fmt.Errorf("topology: chain spacing %.1fm exceeds radio range: %w", spacing, err)
	}
	return net, path, nil
}
