package schedule

import (
	"encoding/json"
	"fmt"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// coupleDTO is the wire form of one (link, rate) couple.
type coupleDTO struct {
	Link int     `json:"link"`
	Rate float64 `json:"rateMbps"`
}

// slotDTO is the wire form of one slot.
type slotDTO struct {
	Share   float64     `json:"share"`
	Couples []coupleDTO `json:"couples"`
}

// MarshalJSON encodes the schedule as a JSON array of slots, each with
// its time share and (link, rate) couples — the persistable form of an
// LP solution.
func (s Schedule) MarshalJSON() ([]byte, error) {
	out := make([]slotDTO, 0, len(s.Slots))
	for _, slot := range s.Slots {
		dto := slotDTO{Share: slot.Share, Couples: make([]coupleDTO, 0, slot.Set.Len())}
		for _, cp := range slot.Set.Couples {
			dto.Couples = append(dto.Couples, coupleDTO{Link: int(cp.Link), Rate: float64(cp.Rate)})
		}
		out = append(out, dto)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var dtos []slotDTO
	if err := json.Unmarshal(data, &dtos); err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	out := Schedule{Slots: make([]Slot, 0, len(dtos))}
	for i, dto := range dtos {
		if dto.Share < 0 {
			return fmt.Errorf("schedule: slot %d has negative share %g", i, dto.Share)
		}
		couples := make([]conflict.Couple, 0, len(dto.Couples))
		for _, c := range dto.Couples {
			if c.Link < 0 || c.Rate <= 0 {
				return fmt.Errorf("schedule: slot %d has invalid couple (%d, %g)", i, c.Link, c.Rate)
			}
			couples = append(couples, conflict.Couple{
				Link: topology.LinkID(c.Link),
				Rate: radio.Rate(c.Rate),
			})
		}
		out.Slots = append(out.Slots, Slot{Share: dto.Share, Set: indepset.NewSet(couples...)})
	}
	*s = out
	return nil
}
