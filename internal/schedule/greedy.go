package schedule

import (
	"fmt"
	"math"
	"sort"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/radio"
	"abw/internal/topology"
)

// Greedy builds a schedule for the given per-link demands (Mbps per
// unit period) without solving the LP: a practical baseline for the
// paper's "globally optimal link scheduling" assumption. Each
// iteration starts a slot with the neediest unsatisfied link (largest
// residual airtime at its current best rate), greedily packs in other
// needy links while every member keeps a positive rate, and sizes the
// slot to the first member completion.
//
// It returns the schedule, whether every demand was met within one
// period, and an error on malformed input. The schedule is always
// feasible (every slot validated against m); when satisfied is false
// the schedule simply fills the period with best-effort service, so
// Throughput reports what greedy *did* deliver.
func Greedy(m conflict.Model, demand map[topology.LinkID]float64) (Schedule, bool, error) {
	residual := make(map[topology.LinkID]float64, len(demand))
	links := make([]topology.LinkID, 0, len(demand))
	for l, d := range demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one invalid demand names the error
			return Schedule{}, false, fmt.Errorf("schedule: invalid demand %g on link %d", d, l)
		}
		if d == 0 {
			continue
		}
		if conflict.AloneMaxRate(m, l) <= 0 {
			//lint:ignore abw/maporder rejection is all-or-nothing; any one silenced link names the error
			return Schedule{}, false, fmt.Errorf("schedule: link %d cannot transmit", l)
		}
		residual[l] = d
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	var sched Schedule
	used := 0.0
	const tol = 1e-12
	for iter := 0; used < 1-tol && len(residual) > 0; iter++ {
		if iter > 4*len(demand)+16 {
			// Each slot completes at least one link, so this cannot
			// happen unless progress stalls numerically.
			break
		}
		members, rates := packSlot(m, links, residual)
		if len(members) == 0 {
			break
		}
		// Slot length: first member completion, capped by the period.
		share := 1 - used
		for i, l := range members {
			if t := residual[l] / float64(rates[i]); t < share {
				share = t
			}
		}
		if share <= tol {
			break
		}
		couples := make([]conflict.Couple, 0, len(members))
		for i, l := range members {
			couples = append(couples, conflict.Couple{Link: l, Rate: rates[i]})
		}
		sched.Slots = append(sched.Slots, Slot{Set: indepset.NewSet(couples...), Share: share})
		used += share
		for i, l := range members {
			residual[l] -= share * float64(rates[i])
			if residual[l] <= tol*float64(rates[i])+1e-9 {
				delete(residual, l)
			}
		}
	}
	return sched.Normalized(), len(residual) == 0, nil
}

// packSlot greedily assembles a concurrent set: seed with the link
// needing the most airtime, then add others in airtime order while the
// whole set keeps positive rates.
func packSlot(m conflict.Model, order []topology.LinkID, residual map[topology.LinkID]float64) ([]topology.LinkID, []radio.Rate) {
	type cand struct {
		link topology.LinkID
		time float64
	}
	cands := make([]cand, 0, len(residual))
	for _, l := range order {
		d, ok := residual[l]
		if !ok {
			continue
		}
		r := conflict.AloneMaxRate(m, l)
		cands = append(cands, cand{link: l, time: d / float64(r)})
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].time > cands[j].time })

	var members []topology.LinkID
	var rates []radio.Rate
	for _, c := range cands {
		trial := append(append([]topology.LinkID(nil), members...), c.link)
		trialRates, ok := maxRatesOf(m, trial)
		if !ok {
			continue
		}
		members = trial
		rates = trialRates
	}
	return members, rates
}

// maxRatesOf computes a stable max-rate assignment for a set: start
// from alone rates and lower each member to what the model sustains
// given the others, iterating to a fixed point. Returns false if any
// member is silenced.
func maxRatesOf(m conflict.Model, links []topology.LinkID) ([]radio.Rate, bool) {
	couples := make([]conflict.Couple, len(links))
	for i, l := range links {
		couples[i] = conflict.Couple{Link: l, Rate: conflict.AloneMaxRate(m, l)}
	}
	for pass := 0; pass < len(links)+1; pass++ {
		changed := false
		for i := range couples {
			others := make([]conflict.Couple, 0, len(couples)-1)
			for j, c := range couples {
				if j != i {
					others = append(others, c)
				}
			}
			r := m.MaxRate(couples[i].Link, others)
			if r == 0 {
				return nil, false
			}
			if r != couples[i].Rate {
				couples[i].Rate = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !conflict.Feasible(m, couples) {
		return nil, false
	}
	rates := make([]radio.Rate, len(couples))
	for i, c := range couples {
		rates[i] = c.Rate
	}
	return rates, true
}
