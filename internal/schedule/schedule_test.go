package schedule

import (
	"encoding/json"
	"math"
	"testing"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/scenario"
	"abw/internal/topology"
)

// paperScheduleII builds the optimal Scenario II schedule from Sec. 5.1:
//
//	(0.1, {L1@54}), (0.3, {L2@54}), (0.3, {L3@54}), (0.3, {(L1,36),(L4,54)}).
func paperScheduleII(s *scenario.ScenarioII) Schedule {
	return Schedule{Slots: []Slot{
		{Share: 0.1, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(conflict.Couple{Link: s.L3, Rate: 54})},
		{Share: 0.3, Set: indepset.NewSet(
			conflict.Couple{Link: s.L1, Rate: 36},
			conflict.Couple{Link: s.L4, Rate: 54},
		)},
	}}
}

func TestPaperScheduleDelivers16_2(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	if err := sched.Validate(s.Model); err != nil {
		t.Fatalf("paper schedule invalid: %v", err)
	}
	for _, l := range s.Links() {
		if got := sched.Throughput(l); math.Abs(got-16.2) > 1e-9 {
			t.Errorf("throughput on L%d = %g, want 16.2", l+1, got)
		}
	}
	if got := sched.TotalShare(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("total share = %g, want 1", got)
	}
	demand := map[topology.LinkID]float64{s.L1: 16.2, s.L2: 16.2, s.L3: 16.2, s.L4: 16.2}
	if !sched.Delivers(demand, 1e-9) {
		t.Error("schedule should deliver 16.2 on all links")
	}
	if sched.Delivers(map[topology.LinkID]float64{s.L1: 16.3}, 1e-9) {
		t.Error("schedule cannot deliver 16.3")
	}
}

func TestValidateRejectsInfeasibleSlot(t *testing.T) {
	s := scenario.NewScenarioII()
	bad := Schedule{Slots: []Slot{{
		Share: 0.5,
		Set: indepset.NewSet(
			conflict.Couple{Link: s.L1, Rate: 54},
			conflict.Couple{Link: s.L2, Rate: 54},
		),
	}}}
	if err := bad.Validate(s.Model); err == nil {
		t.Error("L1+L2 concurrent: expected validation error")
	}
}

func TestValidateRejectsOverfullSchedule(t *testing.T) {
	s := scenario.NewScenarioII()
	bad := Schedule{Slots: []Slot{
		{Share: 0.7, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})},
		{Share: 0.7, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: 54})},
	}}
	if err := bad.Validate(s.Model); err == nil {
		t.Error("total share 1.4: expected validation error")
	}
	neg := Schedule{Slots: []Slot{{Share: -0.1, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})}}}
	if err := neg.Validate(nil); err == nil {
		t.Error("negative share: expected validation error")
	}
	nan := Schedule{Slots: []Slot{{Share: math.NaN()}}}
	if err := nan.Validate(nil); err == nil {
		t.Error("NaN share: expected validation error")
	}
}

func TestNormalized(t *testing.T) {
	s := scenario.NewScenarioII()
	set1 := indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})
	raw := Schedule{Slots: []Slot{
		{Share: 0.1, Set: set1},
		{Share: 0, Set: indepset.NewSet(conflict.Couple{Link: s.L2, Rate: 54})},
		{Share: 0.2, Set: set1},
	}}
	norm := raw.Normalized()
	if len(norm.Slots) != 1 {
		t.Fatalf("normalized slots = %d, want 1", len(norm.Slots))
	}
	if math.Abs(norm.Slots[0].Share-0.3) > 1e-12 {
		t.Errorf("merged share = %g, want 0.3", norm.Slots[0].Share)
	}
	// Throughput must be preserved.
	if math.Abs(raw.Throughput(s.L1)-norm.Throughput(s.L1)) > 1e-12 {
		t.Error("Normalized changed throughput")
	}
}

func TestIdleShare(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := Schedule{Slots: []Slot{
		{Share: 0.4, Set: indepset.NewSet(conflict.Couple{Link: s.L1, Rate: 54})},
	}}
	if got := sched.IdleShare(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("IdleShare = %g, want 0.6", got)
	}
	full := paperScheduleII(s)
	if got := full.IdleShare(); got != 0 {
		t.Errorf("IdleShare of full schedule = %g, want 0", got)
	}
}

func TestEmptySchedule(t *testing.T) {
	var s Schedule
	if err := s.Validate(nil); err != nil {
		t.Errorf("empty schedule should validate: %v", err)
	}
	if s.TotalShare() != 0 || s.IdleShare() != 1 {
		t.Error("empty schedule shares wrong")
	}
	if s.Throughput(0) != 0 {
		t.Error("empty schedule throughput should be 0")
	}
	if s.String() != "schedule{}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestThroughputVector(t *testing.T) {
	s := scenario.NewScenarioII()
	sched := paperScheduleII(s)
	v := sched.ThroughputVector(s.Links())
	for i, got := range v {
		if math.Abs(got-16.2) > 1e-9 {
			t.Errorf("vector[%d] = %g, want 16.2", i, got)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := scenario.NewScenarioII()
	orig := paperScheduleII(s)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Slots) != len(orig.Slots) {
		t.Fatalf("slots: %d vs %d", len(back.Slots), len(orig.Slots))
	}
	for _, l := range s.Links() {
		if math.Abs(back.Throughput(l)-orig.Throughput(l)) > 1e-12 {
			t.Errorf("throughput on %d changed across round trip", l)
		}
	}
	if err := back.Validate(s.Model); err != nil {
		t.Errorf("round-tripped schedule invalid: %v", err)
	}
}

func TestScheduleJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`,
		`[{"share":-1,"couples":[]}]`,
		`[{"share":0.5,"couples":[{"link":-1,"rateMbps":54}]}]`,
		`[{"share":0.5,"couples":[{"link":0,"rateMbps":0}]}]`,
	}
	for i, doc := range cases {
		var s Schedule
		if err := json.Unmarshal([]byte(doc), &s); err == nil {
			t.Errorf("case %d: expected unmarshal error", i)
		}
	}
}
