package schedule

import (
	"math"
	"math/rand"
	"testing"

	"abw/internal/conflict"
	"abw/internal/radio"
	"abw/internal/scenario"
	"abw/internal/topology"
)

func TestGreedySingleLink(t *testing.T) {
	s := scenario.NewScenarioI(54)
	sched, ok, err := Greedy(s.Model, map[topology.LinkID]float64{s.L1: 27})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("27 Mbps on a 54 Mbps link must fit")
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
	if got := sched.Throughput(s.L1); math.Abs(got-27) > 1e-9 {
		t.Errorf("delivered %.4f, want 27", got)
	}
	if got := sched.TotalShare(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("share %.4f, want 0.5", got)
	}
}

func TestGreedyOverlapsIndependentLinks(t *testing.T) {
	// Scenario I: L1 and L2 are independent; greedy must run them
	// concurrently so L3 still fits.
	s := scenario.NewScenarioI(54)
	demand := map[topology.LinkID]float64{
		s.L1: 20, s.L2: 20, s.L3: 30,
	}
	sched, ok, err := Greedy(s.Model, demand)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("demands should fit with overlap (schedule %v)", &sched)
	}
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
	if !sched.Delivers(demand, 1e-6) {
		t.Error("schedule does not deliver the demands")
	}
	// Overlap check: total share must be below the naive serial sum
	// (20+20+30)/54 = 1.296.
	if got := sched.TotalShare(); got > 1+1e-9 {
		t.Errorf("share %.4f exceeds the period", got)
	}
}

func TestGreedyReportsInfeasible(t *testing.T) {
	s := scenario.NewScenarioI(54)
	// L1 and L3 conflict: 40+40 > 54 cannot fit.
	sched, ok, err := Greedy(s.Model, map[topology.LinkID]float64{s.L1: 40, s.L3: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("80 Mbps of conflicting demand cannot fit in a 54 Mbps channel")
	}
	// Best effort still validates and fills most of the period.
	if err := sched.Validate(s.Model); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
	if sched.TotalShare() < 0.99 {
		t.Errorf("best-effort schedule only used %.4f of the period", sched.TotalShare())
	}
}

func TestGreedyValidation(t *testing.T) {
	s := scenario.NewScenarioI(54)
	if _, _, err := Greedy(s.Model, map[topology.LinkID]float64{s.L1: -1}); err == nil {
		t.Error("negative demand: expected error")
	}
	if _, _, err := Greedy(s.Model, map[topology.LinkID]float64{topology.LinkID(99): 1}); err == nil {
		t.Error("unknown link: expected error")
	}
	sched, ok, err := Greedy(s.Model, nil)
	if err != nil || !ok || len(sched.Slots) != 0 {
		t.Errorf("empty demand: (%v, %v, %v)", sched.Slots, ok, err)
	}
}

func TestGreedyNeverBeatsOptimalScenarioII(t *testing.T) {
	// Greedy delivers at most the LP optimum 16.2 on the chain; in fact
	// it cannot reach it because it never lowers L1 below its max rate
	// proactively.
	s := scenario.NewScenarioII()
	for _, f := range []float64{10, 13, 15, 16.2} {
		demand := map[topology.LinkID]float64{}
		for _, l := range s.Links() {
			demand[l] = f
		}
		sched, ok, err := Greedy(s.Model, demand)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(s.Model); err != nil {
			t.Errorf("f=%g: invalid schedule: %v", f, err)
		}
		if ok && f > 16.2+1e-9 {
			t.Errorf("greedy claims to deliver %g > optimum 16.2", f)
		}
		for _, l := range s.Links() {
			if got := sched.Throughput(l); got > f+1e-9 {
				t.Errorf("f=%g: link %d over-delivered %.4f", f, l, got)
			}
		}
	}
}

func TestGreedyRandomDemandsStayFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		tb := conflict.NewTable()
		n := 3 + rng.Intn(4)
		demand := map[topology.LinkID]float64{}
		for i := topology.LinkID(0); int(i) < n; i++ {
			tb.SetRates(i, 54, 36, 18)
			demand[i] = 2 + rng.Float64()*10
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					if err := tb.AddConflictAllRates(topology.LinkID(i), topology.LinkID(j)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		sched, ok, err := Greedy(tb, demand)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Validate(tb); err != nil {
			t.Errorf("trial %d: invalid schedule: %v", trial, err)
		}
		if ok && !sched.Delivers(demand, 1e-6) {
			t.Errorf("trial %d: claims satisfied but does not deliver", trial)
		}
		for l, d := range demand {
			if got := sched.Throughput(l); got > d+1e-6 {
				t.Errorf("trial %d: link %d over-delivered %.4f > %.4f", trial, l, got, d)
			}
		}
	}
}

func TestGreedyPhysicalChain(t *testing.T) {
	net, path, err := topology.Chain(radio.NewProfile80211a(), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := conflict.NewPhysical(net)
	demand := map[topology.LinkID]float64{}
	for _, l := range path {
		demand[l] = 4 // below the 4.5 greedy-reachable line rate
	}
	sched, ok, err := Greedy(m, demand)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("4 Mbps per hop should fit greedily (schedule %v)", &sched)
	}
	if err := sched.Validate(m); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}
