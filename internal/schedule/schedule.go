// Package schedule represents the paper's link schedules: collections
// S = {(E_i, R_i, lambda_i)} of concurrent transmission sets with time
// shares (Sec. 2.3). A demand vector f is feasible iff some schedule
// delivers it with total share at most one (Eq. 2/4); the core package
// produces such schedules from its LP solutions and the simulators
// execute them.
package schedule

import (
	"fmt"
	"math"
	"strings"

	"abw/internal/conflict"
	"abw/internal/indepset"
	"abw/internal/topology"
)

// Slot is one concurrent transmission set scheduled for a fraction of
// the period.
type Slot struct {
	// Set is the concurrent transmission set with its rate vector.
	Set indepset.Set
	// Share is the fraction of the schedule period (lambda_i in the
	// paper), in [0, 1].
	Share float64
}

// Schedule is an ordered collection of slots. The zero value is an
// empty, valid schedule.
type Schedule struct {
	Slots []Slot
}

// TotalShare returns the sum of slot shares; feasible schedules keep it
// at or below one (Eq. 2).
func (s *Schedule) TotalShare() float64 {
	total := 0.0
	for _, slot := range s.Slots {
		total += slot.Share
	}
	return total
}

// IdleShare returns the unscheduled fraction of the period, clamped at
// zero.
func (s *Schedule) IdleShare() float64 {
	return math.Max(0, 1-s.TotalShare())
}

// Throughput returns the long-run throughput the schedule delivers on
// the given link: sum of share * rate over slots containing it.
func (s *Schedule) Throughput(link topology.LinkID) float64 {
	total := 0.0
	for _, slot := range s.Slots {
		if r := slot.Set.Rate(link); r > 0 {
			total += slot.Share * float64(r)
		}
	}
	return total
}

// ThroughputVector returns the delivered throughput aligned with the
// given link universe.
func (s *Schedule) ThroughputVector(universe []topology.LinkID) []float64 {
	out := make([]float64, len(universe))
	for i, l := range universe {
		out[i] = s.Throughput(l)
	}
	return out
}

// Validate checks structural sanity and, when m is non-nil, that every
// slot's transmission set is feasible under the conflict model.
func (s *Schedule) Validate(m conflict.Model) error {
	for i, slot := range s.Slots {
		if slot.Share < -1e-12 || math.IsNaN(slot.Share) || math.IsInf(slot.Share, 0) {
			return fmt.Errorf("schedule: slot %d has invalid share %g", i, slot.Share)
		}
		if m != nil && slot.Set.Len() > 0 && !conflict.Feasible(m, slot.Set.Couples) {
			return fmt.Errorf("schedule: slot %d set %v is not feasible", i, slot.Set)
		}
	}
	if total := s.TotalShare(); total > 1+1e-9 {
		return fmt.Errorf("schedule: total share %.12f exceeds 1", total)
	}
	return nil
}

// Delivers reports whether the schedule meets every given link demand
// within tolerance.
func (s *Schedule) Delivers(demand map[topology.LinkID]float64, tol float64) bool {
	for link, d := range demand {
		if s.Throughput(link) < d-tol {
			return false
		}
	}
	return true
}

// Normalized returns a copy with zero-share slots dropped and slots of
// identical transmission sets merged, preserving first-seen order.
func (s *Schedule) Normalized() Schedule {
	var out Schedule
	index := make(map[string]int)
	for _, slot := range s.Slots {
		if slot.Share <= 1e-12 {
			continue
		}
		key := slot.Set.Key()
		if i, ok := index[key]; ok {
			out.Slots[i].Share += slot.Share
			continue
		}
		index[key] = len(out.Slots)
		out.Slots = append(out.Slots, Slot{Set: slot.Set, Share: slot.Share})
	}
	return out
}

// String implements fmt.Stringer.
func (s *Schedule) String() string {
	if len(s.Slots) == 0 {
		return "schedule{}"
	}
	var b strings.Builder
	b.WriteString("schedule{")
	for i, slot := range s.Slots {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f:%s", slot.Share, slot.Set)
	}
	b.WriteString("}")
	return b.String()
}
