// QoS routing shoot-out on a campus wireless mesh: the same streaming
// flows are routed with the paper's three metrics — hop count, e2eTD
// (end-to-end transmission delay), and average-e2eD (Eq. 14, which
// folds in carrier-sensed channel business) — and the exact available
// bandwidth of every chosen path is computed. Average-e2eD routes
// around congested regions and finds the paths with the most available
// bandwidth (the paper's Fig. 3 conclusion).
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	// A 5x5 campus grid, 100 m between access points (18 Mbps adjacent
	// links); carrier sensing at the decode range so channel business is
	// a local observation. WithWorkers(0) — the default, spelled out —
	// parallelizes independent-set enumeration across GOMAXPROCS
	// goroutines on the larger queries; results are identical at every
	// worker count.
	sys, err := abw.NewSystem(abw.Grid(25, 5, 100), abw.WithCSRangeFactor(1.0), abw.WithWorkers(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus mesh: %d nodes, %d links\n\n", sys.NumNodes(), sys.NumLinks())

	metrics := []abw.RouteMetric{abw.RouteHopCount, abw.RouteE2ETD, abw.RouteAvgE2ED}

	// Load the middle row of the mesh with a 3 Mbps stream, then ask
	// each metric for a corner-to-corner route.
	centerPath, err := sys.Route(abw.RouteE2ETD, 10, 14, nil)
	if err != nil {
		log.Fatal(err)
	}
	background := []abw.Flow{{Path: centerPath, Demand: 3}}

	fmt.Println("3 Mbps crossing the middle row (10 -> 14); routing 0 -> 24:")
	for _, metric := range metrics {
		path, err := sys.Route(metric, 0, 24, background)
		if err != nil {
			log.Fatal(err)
		}
		nodes, err := sys.Network().PathNodes(path)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.AvailableBandwidth(background, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s route %v -> available %.2f Mbps\n", metric, nodes, res.Bandwidth)
	}
	fmt.Println("\nhop count cuts straight through the congested center;")
	fmt.Println("average-e2eD hugs the idle border and finds the widest path.")

	// Sequential admission of six streams under each metric.
	requests := []abw.Request{
		{Src: 0, Dst: 24, Demand: 2},
		{Src: 4, Dst: 20, Demand: 2},
		{Src: 0, Dst: 4, Demand: 2},
		{Src: 20, Dst: 24, Demand: 2},
		{Src: 2, Dst: 22, Demand: 2},
		{Src: 10, Dst: 14, Demand: 2},
	}
	fmt.Println("\nsequential admission of six 2 Mbps streams:")
	fmt.Println("metric        admitted  first failure")
	for _, metric := range metrics {
		decisions, err := sys.Admit(metric, requests, false)
		if err != nil {
			log.Fatal(err)
		}
		admitted := 0
		firstFail := "none"
		for i, d := range decisions {
			if d.Admitted {
				admitted++
			} else if firstFail == "none" {
				firstFail = fmt.Sprintf("flow %d", i+1)
			}
		}
		fmt.Printf("%-13s %-9d %s\n", metric, admitted, firstFail)
	}
}
