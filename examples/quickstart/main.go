// Quickstart: build a small multirate network, compute a path's exact
// available bandwidth with background traffic, and compare it with the
// distributed estimates a real node could compute.
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	// Five sensor nodes in a line, 100 m apart. At this spacing each
	// hop supports 18 Mbps alone (the 802.11a profile of the paper:
	// 54/36/18/6 Mbps with ranges 59/79/119/158 m).
	sys, err := abw.NewSystem(abw.Line(5, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d directed links\n", sys.NumNodes(), sys.NumLinks())

	// The 4-hop path end to end.
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Exact capacity with an idle network: the optimal schedule reuses
	// hop 0 at a lower rate while hop 3 transmits — the paper's central
	// "link adaptation" effect — reaching 54/11 ~ 4.909 Mbps.
	cap0, err := sys.PathCapacity(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path capacity (no background): %.3f Mbps\n", cap0.Bandwidth)
	fmt.Printf("optimal schedule: %s\n", cap0.Schedule.String())

	// Add a 2 Mbps background flow on the same path and ask again.
	background := []abw.Flow{{Path: path, Demand: 2}}
	res, err := sys.AvailableBandwidth(background, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("available with 2 Mbps background: %.3f Mbps\n", res.Bandwidth)

	// What would a distributed node estimate from carrier sensing?
	ests, err := sys.EstimateAll(background, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed estimates:")
	for _, m := range []abw.EstimateMetric{
		abw.EstimateCliqueConstraint,
		abw.EstimateBottleneckNode,
		abw.EstimateMinOfBoth,
		abw.EstimateConservativeClique,
		abw.EstimateECTT,
	} {
		fmt.Printf("  %-35s %.3f Mbps\n", m.String(), ests[m])
	}

	// Verify the schedule actually delivers by running it in the TDMA
	// frame simulator.
	delivered, err := sys.Simulate(res.Schedule, []abw.Flow{{Path: path, Demand: res.Bandwidth}}, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated goodput over 30 periods: %.3f Mbps\n", delivered[0])
}
