// Admission control as a service, end to end in one process: start the
// abwd HTTP daemon on an ephemeral port, drive it with the typed Go
// client — install a topology, query, admit until full, inspect the
// TDMA schedule and fair shares, tear a flow down — exactly the
// workflow a production controller would run against cmd/abwd.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"abw/internal/netjson"
	"abw/internal/server"
)

func main() {
	// Start the daemon in-process on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New().Handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		_ = srv.Close()
		<-done // wait for the serve goroutine to exit
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon at", base)

	client := server.NewClient(base, nil)

	// Install a 5-node chain (capacity 54/11 ~ 4.909 Mbps end to end).
	nodes := []netjson.NodeSpec{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 300, Y: 0}, {X: 400, Y: 0},
	}
	info, err := client.InstallNetwork(nodes, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed: %d nodes, %d links\n\n", info.Nodes, info.Links)

	// Ask before admitting.
	q, err := client.Query(0, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 0->4: %.3f Mbps available, would admit 2 Mbps: %v\n", q.Bandwidth, *q.Admit)

	// Admit until the chain is full.
	for i := 1; ; i++ {
		res, err := client.Admit(0, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Admitted {
			fmt.Printf("flow %d REJECTED: %s\n", i, res.Reason)
			break
		}
		fmt.Printf("flow %d admitted via %v (%.3f Mbps was available)\n",
			res.Flow.ID, res.Flow.Nodes, res.Available)
	}

	// Inspect fair shares and the delivering schedule.
	shares, err := client.Fairshares()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmax-min fair shares:")
	for _, s := range shares {
		fmt.Printf("  flow %d: %.3f Mbps (demanded %.1f)\n", s.Flow, s.FairShare, s.Demand)
	}

	// Tear one down and show the freed capacity.
	flows, err := client.Flows()
	if err != nil {
		log.Fatal(err)
	}
	if len(flows) > 0 {
		if _, err := client.Teardown(flows[0].ID); err != nil {
			log.Fatal(err)
		}
		q, err = client.Query(0, 4, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nafter tearing down flow %d: %.3f Mbps available again\n", flows[0].ID, q.Bandwidth)
	}
}
