// Link adaptation beats any fixed rate — the paper's headline insight
// (Sec. 3.1, 5.1) demonstrated on pure geometry. On a 4-hop chain the
// optimal schedule transmits hop 0 at a REDUCED rate concurrently with
// hop 3 (whose receiver is far enough away), and that time-varying rate
// choice delivers strictly more end-to-end throughput than the best
// fixed-rate schedule. As a corollary, the classical clique bound
// computed at any fixed rate vector sits BELOW the true optimum: the
// clique constraint is invalid under link adaptation.
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	// Four 100 m hops: each link alone decodes 18 Mbps.
	sys, err := abw.NewSystem(abw.Line(5, 100))
	if err != nil {
		log.Fatal(err)
	}
	path, err := sys.PathBetween(0, 1, 2, 3, 4)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.PathCapacity(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multirate optimum: %.4f Mbps (= 54/11)\n", res.Bandwidth)
	fmt.Println("optimal schedule:")
	for _, slot := range res.Schedule.Slots {
		fmt.Printf("  %.4f of the period: %s\n", slot.Share, slot.Set.String())
	}

	// The structure to notice: one slot carries hop 0 at 6 Mbps
	// *concurrently* with hop 3 at 18 Mbps. Hop 0's receiver sits 200 m
	// from hop 3's transmitter (SINR too low for 18, fine for 6), while
	// hop 3's receiver is 400 m from hop 0's transmitter (fine for 18).
	adaptive := false
	for _, slot := range res.Schedule.Slots {
		if slot.Set.Len() == 2 {
			adaptive = true
			fmt.Printf("\nlink-adaptation slot found: %s\n", slot.Set.String())
		}
	}
	if !adaptive {
		fmt.Println("\n(no multi-link slot found — unexpected for this geometry)")
	}

	// Compare with a single-rate world: restrict every hop to 18, 6 or
	// any fixed rate by simply scheduling hops one at a time (the best a
	// fixed 18 Mbps assignment can do on this chain: every pair of hops
	// within interference range).
	fixed := 18.0 / 4 // four hops sharing the channel round-robin
	fmt.Printf("\nbest naive fixed-18 schedule (TDMA round robin): %.4f Mbps\n", fixed)
	fmt.Printf("link adaptation gain: +%.1f%%\n", 100*(res.Bandwidth-fixed)/fixed)

	// The Eq. 9 rate-coupled upper bound remains valid above the
	// optimum.
	ub, err := sys.UpperBound(nil, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrate-coupled clique upper bound (Eq. 9): %.4f Mbps >= %.4f\n", ub, res.Bandwidth)
}
