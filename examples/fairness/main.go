// Fair streaming quality: several cameras share the same mesh, and
// instead of first-come-first-served admission each stream gets its
// max-min fair share of the schedulable capacity — the highest uniform
// video quality the network can actually sustain, computed over the
// paper's exact rate-coupled feasibility region.
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	sys, err := abw.NewSystem(abw.Random(30, 400, 600, 26))
	if err != nil {
		log.Fatal(err)
	}

	// Four camera streams on their average-e2eD routes.
	endpoints := [][2]abw.NodeID{
		{26, 0}, {2, 8}, {22, 6}, {8, 1},
	}
	var flows []abw.Flow
	for _, ep := range endpoints {
		path, err := sys.Route(abw.RouteAvgE2ED, ep[0], ep[1], flows)
		if err != nil {
			log.Fatal(err)
		}
		flows = append(flows, abw.Flow{Path: path}) // uncapped
	}

	alloc, sched, err := sys.MaxMinFair(flows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("max-min fair video rates:")
	for i, a := range alloc {
		nodes, err := sys.Network().PathNodes(flows[i].Path)
		if err != nil {
			log.Fatal(err)
		}
		quality := "SD"
		switch {
		case a >= 8:
			quality = "4K"
		case a >= 4:
			quality = "HD"
		case a >= 2:
			quality = "SD+"
		}
		fmt.Printf("  camera %d->%d via %v: %.2f Mbps (%s)\n",
			endpoints[i][0], endpoints[i][1], nodes, a, quality)
	}
	fmt.Printf("\nschedule uses %.1f%% of the period across %d slots\n",
		100*sched.TotalShare(), len(sched.Slots))

	// Contrast with first-come admission at a uniform target equal to
	// the HIGHEST fair share: early flows grab it, later flows starve —
	// exactly what max-min filling avoids.
	target := 0.0
	for _, a := range alloc {
		if a > target {
			target = a
		}
	}
	fmt.Printf("\ncontrast — first-come admission at a uniform %.2f Mbps target:\n", target)
	var admitted []abw.Flow
	for i, f := range flows {
		res, err := sys.AvailableBandwidth(admitted, f.Path)
		if err != nil {
			log.Fatal(err)
		}
		ok := res.Feasible && res.Bandwidth+1e-9 >= target
		fmt.Printf("  flow %d: available %.2f -> admitted: %v\n", i+1, res.Bandwidth, ok)
		if ok {
			admitted = append(admitted, abw.Flow{Path: f.Path, Demand: target})
		}
	}
}
