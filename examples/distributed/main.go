// Fully distributed operation — what the paper's Sec. 4 is really
// about: nodes that know only their neighbors compute QoS routes by
// message passing (a distance-vector protocol), estimate available
// bandwidth from carrier-sensed idleness, and admit flows without any
// global scheduler. This example runs the whole distributed stack and
// checks it against the centralized optimum.
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	// The paper's Sec. 5.2 deployment.
	sys, err := abw.NewSystem(abw.Random(30, 400, 600, 26))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d links\n\n", sys.NumNodes(), sys.NumLinks())

	// Background: one admitted stream.
	bgPath, err := sys.Route(abw.RouteAvgE2ED, 26, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	background := []abw.Flow{{Path: bgPath, Demand: 2}}

	// 1. Distributed route computation: distance-vector message passing
	//    under the average-e2eD weights.
	src, dst := abw.NodeID(2), abw.NodeID(8)
	dvPath, stats, err := sys.DistributedRoute(abw.RouteAvgE2ED, src, dst, background)
	if err != nil {
		log.Fatal(err)
	}
	centralPath, err := sys.Route(abw.RouteAvgE2ED, src, dst, background)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distance-vector route %d->%d converged in %d rounds, %d messages\n",
		src, dst, stats.Rounds, stats.Messages)
	fmt.Printf("  distributed path: %v\n", mustNodes(sys, dvPath))
	fmt.Printf("  centralized path: %v\n", mustNodes(sys, centralPath))

	// 2. Distributed estimation on the found path vs the exact LP.
	est, err := sys.Estimate(abw.EstimateConservativeClique, background, dvPath)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := sys.AvailableBandwidth(background, dvPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navailable bandwidth on the distributed path:\n")
	fmt.Printf("  conservative clique estimate (local knowledge): %.3f Mbps\n", est)
	fmt.Printf("  exact optimum (global scheduling oracle):       %.3f Mbps\n", exact.Bandwidth)

	// 3. Estimator-guided widest-path routing (the paper's proposal of
	//    using bandwidth estimates AS the routing metric).
	widest, widestEst, err := sys.RouteByEstimate(abw.EstimateConservativeClique, src, dst, background)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwidest-path route by conservative clique estimate: %v (estimate %.3f Mbps)\n",
		mustNodes(sys, widest), widestEst)

	// 4. A distributed admission decision.
	const demand = 2.0
	fmt.Printf("\nadmitting a %.1f Mbps flow %d->%d:\n", demand, src, dst)
	fmt.Printf("  estimator says:  %v (%.3f Mbps available)\n", est >= demand, est)
	fmt.Printf("  oracle says:     %v (%.3f Mbps available)\n", exact.Bandwidth >= demand, exact.Bandwidth)
}

func mustNodes(sys *abw.System, path abw.Path) []abw.NodeID {
	nodes, err := sys.Network().PathNodes(path)
	if err != nil {
		log.Fatal(err)
	}
	return nodes
}
