// Admission control for on-demand video monitoring — the paper's
// motivating scenario: camera sensor nodes scattered over a field
// stream 2 Mbps video toward monitoring stations, and each new stream
// must be admitted only if its path can really sustain it next to the
// traffic already flowing.
//
// The example routes every request with the paper's best metric
// (average-e2eD), computes the exact available bandwidth of the chosen
// path with the Eq. 6 model, and admits or rejects the stream.
package main

import (
	"fmt"
	"log"

	"abw"
)

func main() {
	// 30 camera nodes in a 400 m x 600 m wildlife reserve (the paper's
	// Sec. 5.2 deployment, topology seed 26).
	sys, err := abw.NewSystem(abw.Random(30, 400, 600, 26))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d links\n\n", sys.NumNodes(), sys.NumLinks())

	// Eight cameras request 2 Mbps video streams, one after another.
	requests := []abw.Request{
		{Src: 26, Dst: 0, Demand: 2},
		{Src: 2, Dst: 8, Demand: 2},
		{Src: 22, Dst: 6, Demand: 2},
		{Src: 8, Dst: 1, Demand: 2},
		{Src: 1, Dst: 20, Demand: 2},
		{Src: 22, Dst: 12, Demand: 2},
		{Src: 29, Dst: 20, Demand: 2},
		{Src: 24, Dst: 6, Demand: 2},
	}

	decisions, err := sys.Admit(abw.RouteAvgE2ED, requests, false)
	if err != nil {
		log.Fatal(err)
	}

	admitted := 0
	fmt.Println("stream  route                 available  decision")
	for i, d := range decisions {
		route := "-"
		if d.Path != nil {
			nodes, err := sys.Network().PathNodes(d.Path)
			if err != nil {
				log.Fatal(err)
			}
			route = ""
			for j, n := range nodes {
				if j > 0 {
					route += "-"
				}
				route += fmt.Sprint(n)
			}
		}
		verdict := "REJECTED (" + d.Reason + ")"
		if d.Admitted {
			verdict = "admitted"
			admitted++
		}
		fmt.Printf("%-7d %-21s %6.2f     %s\n", i+1, route, d.Available, verdict)
	}
	fmt.Printf("\n%d of %d streams admitted\n", admitted, len(decisions))
}
